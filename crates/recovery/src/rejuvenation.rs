//! Proactive software rejuvenation \[Huang95\].
//!
//! §6.2: rejuvenation "takes advantage of recovery code that is already
//! present in the application, e.g. code to re-initialize the
//! application's state" and "seeks to prevent failures by invoking this
//! application-specific recovery code before the program crashes". The
//! strategy periodically sends the application's own rejuvenation request
//! (Apache's HUP); reactive failures fall back to restart-retry. Because
//! the hook is the application's, the strategy is not purely generic — it
//! is the bridge case between the two §2 categories.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;

/// Periodic rejuvenation with restart-retry fallback.
#[derive(Debug)]
pub struct Rejuvenation {
    period: u32,
    retries: u32,
    served_since: u32,
    rejuvenations: u32,
    checkpoint: Option<AppState>,
}

impl Rejuvenation {
    /// Rejuvenates every `period` served requests; on reactive failure,
    /// retries up to `retries` times.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u32, retries: u32) -> Rejuvenation {
        assert!(period > 0, "rejuvenation period must be positive");
        Rejuvenation { period, retries, served_since: 0, rejuvenations: 0, checkpoint: None }
    }

    /// Rejuvenations performed so far.
    pub fn rejuvenations(&self) -> u32 {
        self.rejuvenations
    }

    /// The configured period.
    pub fn period(&self) -> u32 {
        self.period
    }
}

impl RecoveryStrategy for Rejuvenation {
    fn name(&self) -> &'static str {
        "rejuvenation"
    }

    fn is_generic(&self) -> bool {
        // Invokes application-provided recovery code.
        false
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, env: &mut Environment) {
        self.served_since += 1;
        if self.served_since >= self.period {
            self.served_since = 0;
            if let Some(req) = app.rejuvenate_request() {
                // Proactive rejuvenation; a failure of the hook itself is
                // tolerated (the reactive path will deal with the fault).
                if app.handle(&req, env).is_ok() {
                    self.rejuvenations += 1;
                }
            }
        }
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        // After the restart, apply the rejuvenation hook as well: the
        // restarted instance begins from re-initialized resources.
        if let Some(req) = app.rejuvenate_request() {
            if app.handle(&req, env).is_ok() {
                self.rejuvenations += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::{MiniDb, MiniWeb};

    #[test]
    fn periodic_rejuvenation_prevents_the_leak_crash() {
        let mut env = Environment::builder().seed(5).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-01", &mut env).unwrap();
        let mut s = Rejuvenation::new(2, 1);
        s.on_start(&mut app, &mut env);
        // Twelve bursts would crash at the third without rejuvenation; the
        // period-2 hook resets the leak before it accumulates.
        let burst = Request::new("GET /burst");
        for i in 0..12 {
            let result = app.handle(&burst, &mut env);
            assert!(result.is_ok(), "burst {i} crashed despite rejuvenation");
            s.on_success(&burst, &mut app, &mut env);
        }
        assert!(s.rejuvenations() >= 5);
    }

    #[test]
    fn without_rejuvenation_the_same_load_crashes() {
        let mut env = Environment::builder().seed(5).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-01", &mut env).unwrap();
        let burst = Request::new("GET /burst");
        let mut crashed = false;
        for _ in 0..12 {
            if app.handle(&burst, &mut env).is_err() {
                crashed = true;
                break;
            }
        }
        assert!(crashed);
    }

    #[test]
    fn reactive_path_rejuvenates_after_restore() {
        let mut env = Environment::builder().seed(5).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-01", &mut env).unwrap();
        let burst = Request::new("GET /burst");
        let mut s = Rejuvenation::new(100, 2);
        s.on_start(&mut app, &mut env);
        // Crash the app by leaking.
        app.handle(&burst, &mut env).unwrap();
        app.handle(&burst, &mut env).unwrap();
        assert!(app.handle(&burst, &mut env).is_err());
        assert!(s.on_failure(&mut app, &mut env, 1));
        // The restored-but-rejuvenated instance serves the burst again.
        assert!(app.handle(&burst, &mut env).is_ok());
        assert!(s.rejuvenations() >= 1);
    }

    #[test]
    fn apps_without_a_hook_degrade_to_restart() {
        let mut env = Environment::builder().seed(5).build();
        let mut app = MiniDb::new(&mut env);
        let mut s = Rejuvenation::new(1, 1);
        s.on_start(&mut app, &mut env);
        let ping = Request::new("PING");
        app.handle(&ping, &mut env).unwrap();
        s.on_success(&ping, &mut app, &mut env);
        assert_eq!(s.rejuvenations(), 0, "MiniDb has no rejuvenation hook");
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(!s.on_failure(&mut app, &mut env, 2));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        Rejuvenation::new(0, 1);
    }
}
