//! A real-thread process-pair demonstration.
//!
//! The simulation-scheduler strategies in this crate keep experiments
//! deterministic; this module complements them with a process pair built
//! from actual OS threads and crossbeam channels, showing the mechanism's
//! moving parts: the primary processes operations and ships a checkpoint
//! to the backup after each one; when the primary dies, the backup takes
//! over from the last shipped checkpoint and re-executes the remainder.
//!
//! The pair survives a *transient* primary failure (the canonical
//! Heisenbug: the operation succeeds when re-executed by the backup) and
//! demonstrably does not survive a deterministic poison operation that
//! kills whichever replica executes it — the paper's thesis in thread
//! form.

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// What the primary ships to the backup.
#[derive(Debug, Clone)]
enum Ship {
    /// Checkpoint: operations completed so far and the accumulator value.
    Checkpoint { completed: usize, acc: u64 },
    /// Clean shutdown: all operations done.
    Done { acc: u64 },
}

/// One operation of the replicated computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Add a value to the accumulator.
    Add(u64),
    /// Dies on the first replica that executes it, succeeds on the next
    /// (a transient fault: re-execution under a different "environment" —
    /// here, the other thread — succeeds).
    TransientFault(u64),
    /// Dies on every replica that executes it (a deterministic fault).
    PoisonFault,
}

/// Result of running the pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairOutcome {
    /// Final accumulator if the computation completed.
    pub result: Option<u64>,
    /// Whether failover to the backup happened.
    pub failed_over: bool,
    /// Operations completed by the primary before it died (all of them if
    /// it never died).
    pub primary_completed: usize,
}

/// Executes `ops` on a primary thread with a backup standing by.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::thread_pair::{run_pair, Op};
///
/// let outcome = run_pair(&[Op::Add(1), Op::TransientFault(2), Op::Add(3)]);
/// assert_eq!(outcome.result, Some(6), "backup finished the work");
/// assert!(outcome.failed_over);
/// ```
pub fn run_pair(ops: &[Op]) -> PairOutcome {
    let ops: Arc<Vec<Op>> = Arc::new(ops.to_vec());
    let (tx, rx) = bounded::<Ship>(ops.len() + 1);
    let primary_completed = Arc::new(Mutex::new(0usize));

    // --- primary ---
    let primary = {
        let ops = Arc::clone(&ops);
        let completed = Arc::clone(&primary_completed);
        thread::spawn(move || primary_loop(&ops, &tx, &completed))
    };
    let _ = primary.join();

    // --- backup: drain the channel (the primary is gone either way) ---
    let mut last: Option<Ship> = None;
    while let Ok(ship) = rx.try_recv() {
        last = Some(ship);
    }
    let primary_completed = *primary_completed.lock();
    match last {
        Some(Ship::Done { acc }) => {
            PairOutcome { result: Some(acc), failed_over: false, primary_completed }
        }
        Some(Ship::Checkpoint { completed, acc }) => {
            backup_takeover(&ops, completed, acc, primary_completed)
        }
        None => backup_takeover(&ops, 0, 0, primary_completed),
    }
}

fn primary_loop(ops: &[Op], tx: &Sender<Ship>, completed: &Mutex<usize>) {
    let mut acc = 0u64;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Add(v) => acc += v,
            // The primary is the first executor: both fault kinds kill it.
            Op::TransientFault(_) | Op::PoisonFault => return,
        }
        *completed.lock() = i + 1;
        let _ = tx.send(Ship::Checkpoint { completed: i + 1, acc });
    }
    let _ = tx.send(Ship::Done { acc });
}

fn backup_takeover(
    ops: &[Op],
    completed: usize,
    mut acc: u64,
    primary_completed: usize,
) -> PairOutcome {
    for op in &ops[completed..] {
        match op {
            Op::Add(v) => acc += v,
            // Second execution of a transient fault succeeds.
            Op::TransientFault(v) => acc += v,
            // A deterministic fault kills the backup too: the pair fails.
            Op::PoisonFault => {
                return PairOutcome { result: None, failed_over: true, primary_completed }
            }
        }
    }
    PairOutcome { result: Some(acc), failed_over: true, primary_completed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_never_fails_over() {
        let outcome = run_pair(&[Op::Add(1), Op::Add(2), Op::Add(3)]);
        assert_eq!(outcome.result, Some(6));
        assert!(!outcome.failed_over);
        assert_eq!(outcome.primary_completed, 3);
    }

    #[test]
    fn transient_fault_survived_by_failover() {
        let outcome = run_pair(&[Op::Add(10), Op::TransientFault(5), Op::Add(1)]);
        assert_eq!(outcome.result, Some(16));
        assert!(outcome.failed_over);
        assert_eq!(outcome.primary_completed, 1, "primary died at op 2");
    }

    #[test]
    fn poison_fault_kills_both_replicas() {
        let outcome = run_pair(&[Op::Add(1), Op::PoisonFault, Op::Add(2)]);
        assert_eq!(outcome.result, None, "deterministic fault defeats the pair");
        assert!(outcome.failed_over);
    }

    #[test]
    fn immediate_transient_fault_recovers_from_empty_checkpoint() {
        let outcome = run_pair(&[Op::TransientFault(4), Op::Add(1)]);
        assert_eq!(outcome.result, Some(5));
        assert!(outcome.failed_over);
        assert_eq!(outcome.primary_completed, 0);
    }

    #[test]
    fn empty_op_list_completes() {
        let outcome = run_pair(&[]);
        assert_eq!(outcome.result, Some(0));
        assert!(!outcome.failed_over);
    }
}
