//! Failure-oblivious strategies: keep the request stream alive past a
//! failure the retry budget cannot clear, instead of abandoning it.
//!
//! Two escalation policies over the restart-retry skeleton:
//!
//! - [`Oblivious`] *discards* the doomed request — the client gets an
//!   honest `Denied` substitute and the stream continues. This rescues
//!   the environment-independent majority that no amount of retrying
//!   touches, visibly: the substitute is excluded from goodput.
//! - [`ManufacturedValue`] *synthesizes* a deterministic default answer
//!   and keeps serving, the failure-oblivious computing move: the client
//!   cannot tell the answer was made up, so the cost is silent and only a
//!   correctness oracle (and the supervisor's `oblivious.manufactured`
//!   counter) exposes it.
//!
//! Neither policy rolls the application back when it goes oblivious:
//! plowing ahead with whatever state the failure left behind is exactly
//! what the literature warns about, and exactly what the per-app oracles
//! are there to price. With the feature disabled (`discard_after: None` /
//! `defaults: false`) each strategy is byte-for-byte [`RestartRetry`].

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request, Response};
use faultstudy_env::Environment;

/// Discard-and-continue: restart-retry that, past a discard threshold,
/// drops the failing request with a visible `Denied` substitute instead
/// of abandoning the whole stream.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::{Oblivious, RecoveryStrategy};
///
/// let s = Oblivious::new(3).discard_after(0);
/// assert_eq!(s.name(), "oblivious");
/// assert!(s.is_generic());
/// ```
#[derive(Debug)]
pub struct Oblivious {
    retries: u32,
    discard_after: Option<u32>,
    checkpoint: Option<AppState>,
    pending_discard: bool,
}

impl Oblivious {
    /// A strategy with a retry budget of `retries` and discarding
    /// disabled — identical to [`RestartRetry::new`](crate::RestartRetry::new).
    pub fn new(retries: u32) -> Oblivious {
        Oblivious { retries, discard_after: None, checkpoint: None, pending_discard: false }
    }

    /// Enables discarding: after `attempts` failed attempts of one request
    /// the request is dropped and answered with a `Denied` substitute.
    /// `0` discards on the very first failure — pure failure-oblivious
    /// operation, no retry at all.
    #[must_use]
    pub fn discard_after(mut self, attempts: u32) -> Oblivious {
        self.discard_after = Some(attempts);
        self
    }
}

impl RecoveryStrategy for Oblivious {
    fn name(&self) -> &'static str {
        "oblivious"
    }

    fn is_generic(&self) -> bool {
        // Discarding needs no application knowledge: any request can be
        // dropped opaquely, like any checkpoint can be restored opaquely.
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if let Some(limit) = self.discard_after {
            if attempt > limit {
                // Decline the retry and leave the state exactly as the
                // failure left it; `manufacture` substitutes the answer.
                self.pending_discard = true;
                return false;
            }
        }
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        true
    }

    fn manufacture(
        &mut self,
        req: &Request,
        _app: &mut dyn Application,
        _env: &mut Environment,
    ) -> Option<Response> {
        std::mem::take(&mut self.pending_discard)
            .then(|| Response::Denied(format!("discarded after failure: {}", req.body)))
    }
}

/// Manufactured-value continuation: restart-retry that, once the retry
/// budget is exhausted, synthesizes a deterministic default answer and
/// keeps serving — the silent variant of going oblivious.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::{ManufacturedValue, RecoveryStrategy};
///
/// let s = ManufacturedValue::new(0).with_defaults();
/// assert_eq!(s.name(), "manufactured");
/// ```
#[derive(Debug)]
pub struct ManufacturedValue {
    retries: u32,
    defaults: bool,
    checkpoint: Option<AppState>,
    pending_default: bool,
}

impl ManufacturedValue {
    /// A strategy with a retry budget of `retries` and manufacturing
    /// disabled — identical to [`RestartRetry::new`](crate::RestartRetry::new).
    pub fn new(retries: u32) -> ManufacturedValue {
        ManufacturedValue { retries, defaults: false, checkpoint: None, pending_default: false }
    }

    /// Enables manufactured defaults once the retry budget is exhausted.
    #[must_use]
    pub fn with_defaults(mut self) -> ManufacturedValue {
        self.defaults = true;
        self
    }
}

impl RecoveryStrategy for ManufacturedValue {
    fn name(&self) -> &'static str {
        "manufactured"
    }

    fn is_generic(&self) -> bool {
        // The default is a pure function of the request text — no
        // application knowledge, which is also why it can be wrong.
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            if self.defaults {
                self.pending_default = true;
            }
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        true
    }

    fn manufacture(
        &mut self,
        req: &Request,
        _app: &mut dyn Application,
        _env: &mut Environment,
    ) -> Option<Response> {
        std::mem::take(&mut self.pending_default)
            .then(|| Response::Ok(format!("manufactured default for: {}", req.body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{run_workload, run_workload_supervised, SupervisorConfig};
    use crate::RestartRetry;
    use faultstudy_apps::MiniWeb;

    fn ei_scenario(strategy: &mut dyn RecoveryStrategy) -> (crate::WorkloadRun, Environment) {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![
            Request::new("GET /before"),
            app.trigger_request("apache-ei-01").unwrap(),
            Request::new("GET /after"),
        ];
        let run = run_workload(&mut app, &mut env, &workload, strategy);
        (run, env)
    }

    #[test]
    fn discarding_survives_a_deterministic_fault() {
        let (run, _) = ei_scenario(&mut Oblivious::new(3).discard_after(1));
        assert!(run.survived, "the stream outlives the undeflectable fault");
        assert_eq!(run.completed, 3, "the discarded request still counts as answered");
        assert_eq!(run.failures, 2, "one real attempt plus the single retry");
    }

    #[test]
    fn discard_after_zero_never_retries() {
        let (run, _) = ei_scenario(&mut Oblivious::new(3).discard_after(0));
        assert!(run.survived);
        assert_eq!(run.failures, 1, "no retry at all");
        assert_eq!(run.recoveries, 0);
    }

    #[test]
    fn manufactured_value_serves_a_silent_default() {
        let (run, _) = ei_scenario(&mut ManufacturedValue::new(1).with_defaults());
        assert!(run.survived);
        assert_eq!(run.completed, 3);
    }

    #[test]
    fn disabled_features_degenerate_into_restart_retry() {
        let baseline = ei_scenario(&mut RestartRetry::new(3));
        let oblivious = ei_scenario(&mut Oblivious::new(3));
        let manufactured = ei_scenario(&mut ManufacturedValue::new(3));
        assert_eq!(oblivious.0, baseline.0);
        assert_eq!(oblivious.1.now(), baseline.1.now());
        assert_eq!(manufactured.0, baseline.0);
        assert_eq!(manufactured.1.now(), baseline.1.now());
        assert!(!baseline.0.survived, "restart never touches the EI fault");
    }

    #[test]
    fn supervisor_counts_substitutes_and_oracle_violations() {
        let mut env = Environment::builder().seed(7).proc_slots(6).metrics(true).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-19", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-19").unwrap()];
        let mut strategy = ManufacturedValue::new(0).with_defaults();
        let out = run_workload_supervised(
            &mut app,
            &mut env,
            &workload,
            &mut strategy,
            &SupervisorConfig::permissive(),
            None,
        );
        assert!(out.run.survived);
        let reg = env.metrics.take().unwrap();
        assert_eq!(reg.counter("oblivious.manufactured", "manufactured"), 1);
        assert_eq!(reg.counter("oblivious.discarded", "manufactured"), 0);
        // The keep-alive counter wrapped mid-crash and the manufactured
        // continuation kept serving from that state: the oracle sees it.
        assert!(reg.counter("oracle.violations", "manufactured") >= 1);
    }

    #[test]
    fn discarded_substitute_is_denied_not_ok() {
        let mut env = Environment::builder().seed(7).proc_slots(6).metrics(true).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        let mut strategy = Oblivious::new(3).discard_after(0);
        let out = run_workload_supervised(
            &mut app,
            &mut env,
            &workload,
            &mut strategy,
            &SupervisorConfig::permissive(),
            None,
        );
        assert!(out.run.survived);
        let reg = env.metrics.take().unwrap();
        assert_eq!(reg.counter("oblivious.discarded", "oblivious"), 1);
        assert_eq!(reg.counter("oblivious.manufactured", "oblivious"), 0);
    }
}
