//! Rollback-recovery: periodic checkpoints plus message-log replay
//! [Elnozahy99, Huang93].
//!
//! Instead of checkpointing at every request boundary, the application is
//! checkpointed every `checkpoint_every` served requests and the requests
//! since the checkpoint are logged. Recovery restores the checkpoint and
//! replays the log. Crucially, replay re-delivers the *requests* but not
//! the one-shot environmental timing events that accompanied them (a
//! user's stop press is not in the message log), and the replayed
//! execution observes the *current* environment — both are exactly the
//! paper's mechanism by which transient conditions disappear on retry.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;

/// Checkpoint/replay rollback recovery.
#[derive(Debug)]
pub struct RollbackRecovery {
    checkpoint_every: u32,
    retries: u32,
    checkpoint: Option<AppState>,
    log: Vec<Request>,
    since_checkpoint: u32,
    replayed_total: u64,
}

impl RollbackRecovery {
    /// Checkpoints every `checkpoint_every` requests and retries a failed
    /// request up to `retries` times.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every` is zero.
    pub fn new(checkpoint_every: u32, retries: u32) -> RollbackRecovery {
        assert!(checkpoint_every > 0, "checkpoint interval must be positive");
        RollbackRecovery {
            checkpoint_every,
            retries,
            checkpoint: None,
            log: Vec::new(),
            since_checkpoint: 0,
            replayed_total: 0,
        }
    }

    /// Requests replayed across all recoveries (benchmark statistic).
    pub fn replayed_total(&self) -> u64 {
        self.replayed_total
    }

    /// The configured checkpoint interval.
    pub fn checkpoint_every(&self) -> u32 {
        self.checkpoint_every
    }
}

impl RecoveryStrategy for RollbackRecovery {
    fn name(&self) -> &'static str {
        "rollback"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
        self.log.clear();
        self.since_checkpoint = 0;
    }

    fn on_success(&mut self, req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint = Some(app.snapshot());
            self.log.clear();
            self.since_checkpoint = 0;
        } else {
            // Log the message for replay, without its one-shot timing event.
            let mut logged = req.clone();
            logged.timing_event = false;
            self.log.push(logged);
        }
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        // Replay the logged messages against the current environment. A
        // replay failure aborts this recovery attempt; the budget allows
        // trying again (the environment may have changed meanwhile).
        for req in &self.log {
            self.replayed_total += 1;
            if app.handle(req, env).is_err() {
                return attempt < self.retries;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::MiniWeb;

    fn setup() -> (Environment, MiniWeb) {
        let mut env = Environment::builder().seed(3).build();
        let app = MiniWeb::new(&mut env);
        (env, app)
    }

    fn serve(app: &mut MiniWeb, env: &mut Environment, s: &mut RollbackRecovery, path: &str) {
        let req = Request::new(format!("GET {path}"));
        app.handle(&req, env).unwrap();
        s.on_success(&req, app, env);
    }

    #[test]
    fn replay_reconstructs_state_between_checkpoints() {
        let (mut env, mut app) = setup();
        let mut s = RollbackRecovery::new(3, 2);
        s.on_start(&mut app, &mut env);
        serve(&mut app, &mut env, &mut s, "/a");
        serve(&mut app, &mut env, &mut s, "/b");
        let served_before = app.served();
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert_eq!(app.served(), served_before, "checkpoint + replay = same state");
        assert_eq!(s.replayed_total(), 2);
    }

    #[test]
    fn checkpoint_boundary_truncates_the_log() {
        let (mut env, mut app) = setup();
        let mut s = RollbackRecovery::new(2, 2);
        s.on_start(&mut app, &mut env);
        serve(&mut app, &mut env, &mut s, "/a");
        serve(&mut app, &mut env, &mut s, "/b"); // checkpoint here
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert_eq!(s.replayed_total(), 0, "log was truncated at the checkpoint");
    }

    #[test]
    fn timing_events_are_not_replayed() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-03", &mut env).unwrap();
        let mut s = RollbackRecovery::new(10, 2);
        s.on_start(&mut app, &mut env);
        // The download with the stop press fails; pretend an earlier
        // attempt succeeded and was logged WITH its event armed.
        let req = Request::new("GET /download").with_timing_event();
        s.on_success(&req, &mut app, &mut env);
        // Replay must not re-fire the event, so recovery succeeds.
        assert!(s.on_failure(&mut app, &mut env, 1));
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_interval_rejected() {
        RollbackRecovery::new(0, 1);
    }

    #[test]
    fn gives_up_past_budget() {
        let (mut env, mut app) = setup();
        let mut s = RollbackRecovery::new(2, 1);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(!s.on_failure(&mut app, &mut env, 2));
    }
}
