//! Microreboot: crash-only component recovery over a per-component
//! restart tree \[Candea03\].
//!
//! Where every generic strategy in this crate restarts the *whole*
//! process and restores a checkpoint byte-for-byte, [`MicroReboot`]
//! routes each failure to the component that served the request and
//! reboots just that component — discarding only its volatile state,
//! at a boot cost orders of magnitude below a process restart. The
//! [`RestartTree`] supervises the escalation ladder: restart the
//! faulting child; if its per-node circuit breaker trips, crash and
//! reboot its parent's subtree; if breakers are open all the way up (or
//! the failing component's state is durable-hard and may not be
//! discarded), fall back to exactly the whole-process restart of
//! [`RestartRetry`](crate::RestartRetry). Every node has its own
//! [`BackoffPolicy`] (jitter derived via `split_seed`, so schedules
//! replay byte-identically at any thread count) and its own
//! [`CircuitBreaker`]; reboot latency and backoff are charged to the
//! simulated clock.
//!
//! Microreboot is deliberately *not* generic in the paper's §2 sense: the
//! component partition, the state-kind taxonomy, and the knowledge of
//! what each crash may discard are application-specific. That is the
//! point of the comparison — §2 proves a truly generic mechanism must
//! preserve all state, so a leak checkpointed into "all state" defeats
//! it, while a crash-only partition is allowed to throw the leak away.

use crate::backoff::BackoffPolicy;
use crate::breaker::CircuitBreaker;
use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;
use faultstudy_micro::{subtree, validate_topology, ComponentDesc};
use faultstudy_obs::Span;
use faultstudy_sim::rng::split_seed;
use faultstudy_sim::time::Duration;

/// How far one recovery action reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebootScope {
    /// Crash and reboot one component.
    Component(usize),
    /// Crash and reboot the subtree rooted at this component (children
    /// first, boot in parent-first index order).
    Subtree(usize),
    /// Full process reboot: kill the application's processes and restore
    /// the last checkpoint — byte-identical to
    /// [`RestartRetry`](crate::RestartRetry)'s recovery action.
    Process,
}

/// Per-node supervision state.
#[derive(Debug)]
struct TreeNode {
    backoff: BackoffPolicy,
    breaker: CircuitBreaker,
    /// Consecutive reboots of this node since it last settled; drives its
    /// backoff schedule.
    streak: u32,
    /// Total reboots of this node (alone or inside a subtree).
    reboots: u64,
}

/// The per-component restart tree: one [`CircuitBreaker`] and one
/// [`BackoffPolicy`] per tree node, and the escalation ladder between
/// them.
///
/// Escalation is a pure function of the [`RestartTree::plan`] /
/// [`RestartTree::settle`] call sequence: each level of the tree absorbs
/// `escalate_after` consecutive failures (its breaker's threshold) before
/// the ladder moves one level up, and a settle closes every breaker on
/// the failing component's ancestor chain. A threshold of zero disables
/// escalation entirely — every failure stays scoped to its component.
#[derive(Debug)]
pub struct RestartTree {
    descs: &'static [ComponentDesc],
    nodes: Vec<TreeNode>,
}

impl RestartTree {
    /// Builds the tree over an application's component slice with the
    /// given escalation threshold and per-node backoff band. Per-node
    /// jitter seeds derive from `seed` via `split_seed`.
    ///
    /// # Panics
    ///
    /// Panics if the component slice violates the topology invariants —
    /// an application bug, not a recoverable condition.
    pub fn new(
        descs: &'static [ComponentDesc],
        escalate_after: u32,
        base: Duration,
        cap: Duration,
        seed: u64,
    ) -> RestartTree {
        validate_topology(descs).expect("crash-only component tree is well-formed");
        let nodes = (0..descs.len())
            .map(|i| TreeNode {
                backoff: BackoffPolicy::new(base, cap, split_seed(seed, i as u64)),
                breaker: CircuitBreaker::new(escalate_after),
                streak: 0,
                reboots: 0,
            })
            .collect();
        RestartTree { descs, nodes }
    }

    /// The component slice this tree supervises.
    pub fn components(&self) -> &'static [ComponentDesc] {
        self.descs
    }

    /// The name of component `index` (metrics label).
    pub fn name(&self, index: usize) -> &'static str {
        self.descs[index].name
    }

    /// Total reboots of component `index` so far.
    pub fn reboots(&self, index: usize) -> u64 {
        self.nodes[index].reboots
    }

    /// Decides the reboot scope for a failure attributed to `component`,
    /// recording the failure on the breakers it consults.
    ///
    /// The ladder: a durable-hard component may never be crashed, so its
    /// failures go straight to [`RebootScope::Process`]. Otherwise the
    /// component absorbs failures until its breaker is open, then each
    /// ancestor absorbs its own threshold of subtree reboots, and when
    /// breakers are open all the way to the root the scope is the whole
    /// process.
    pub fn plan(&mut self, component: usize) -> RebootScope {
        if !self.descs[component].state_kind.crashable() {
            return RebootScope::Process;
        }
        // The trip transition itself still reboots at this level; the
        // *next* failure escalates. Every level thus absorbs exactly its
        // threshold of consecutive failures.
        let tripped = self.nodes[component].breaker.record_failure();
        if tripped || !self.nodes[component].breaker.is_open() {
            return RebootScope::Component(component);
        }
        let mut cursor = self.descs[component].parent;
        while let Some(p) = cursor {
            if !self.descs[p].state_kind.crashable() {
                return RebootScope::Process;
            }
            let tripped = self.nodes[p].breaker.record_failure();
            if tripped || !self.nodes[p].breaker.is_open() {
                return RebootScope::Subtree(p);
            }
            cursor = self.descs[p].parent;
        }
        RebootScope::Process
    }

    /// Settles a success of a request served by `component`: closes every
    /// breaker and resets every backoff streak on its ancestor chain.
    pub fn settle(&mut self, component: usize) {
        let mut cursor = Some(component);
        while let Some(i) = cursor {
            self.nodes[i].breaker.record_success();
            self.nodes[i].streak = 0;
            cursor = self.descs[i].parent;
        }
    }

    /// The members of `root`'s subtree in boot (index) order.
    pub fn members(&self, root: usize) -> Vec<usize> {
        subtree(self.descs, root)
    }

    /// Accounts one reboot of `scope`: bumps reboot counters, advances the
    /// charged node's backoff streak, and returns the simulated cost —
    /// boot latency of everything rebooted plus the node's jittered
    /// backoff delay. [`RebootScope::Process`] costs nothing here; the
    /// process restart itself charges
    /// [`Environment::on_generic_recovery`]'s latency.
    pub fn charge(&mut self, scope: RebootScope) -> Duration {
        match scope {
            RebootScope::Component(i) => {
                self.nodes[i].reboots += 1;
                self.nodes[i].streak += 1;
                self.descs[i].boot_cost + self.nodes[i].backoff.delay(self.nodes[i].streak)
            }
            RebootScope::Subtree(p) => {
                let mut cost = Duration::ZERO;
                for m in self.members(p) {
                    self.nodes[m].reboots += 1;
                    cost = cost + self.descs[m].boot_cost;
                }
                self.nodes[p].streak += 1;
                cost + self.nodes[p].backoff.delay(self.nodes[p].streak)
            }
            RebootScope::Process => Duration::ZERO,
        }
    }
}

/// The microreboot strategy: crash-only component recovery driven by a
/// [`RestartTree`].
///
/// On an application without a crash-only partition
/// ([`Application::as_crash_only`] returns `None`), and for the
/// [`RebootScope::Process`] rung of the ladder, the strategy performs
/// exactly [`RestartRetry`](crate::RestartRetry)'s recovery — kill the
/// application's processes, restore the last checkpoint — so a
/// single-component durable-hard tree degenerates byte-for-byte into
/// whole-process restart (pinned by the differential proptests).
///
/// The retry budget counts *attempts*, like every strategy here, but the
/// economics differ: a component reboot costs tens of simulated
/// milliseconds against the full second a process restart consumes, so a
/// time-equivalent budget affords microreboot several times the attempts.
/// [`MicroReboot::new`] defaults to the same attempt budget as the
/// campaign's restart strategy; campaigns that want time-parity raise it
/// explicitly.
#[derive(Debug)]
pub struct MicroReboot {
    retries: u32,
    escalate_after: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
    checkpoint: Option<AppState>,
    tree: Option<RestartTree>,
    /// Per-component open time-to-recovery spans: opened at a component's
    /// first failure, closed when a request routed to it succeeds.
    pending: Vec<Option<Span>>,
}

/// Default escalation threshold: each tree level absorbs two consecutive
/// failures before the ladder moves up.
const DEFAULT_ESCALATE_AFTER: u32 = 2;
/// Default per-node backoff band, matching the injection campaign's.
const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(50);
const DEFAULT_BACKOFF_CAP: Duration = Duration::from_secs(2);

impl MicroReboot {
    /// A microreboot strategy with a retry budget of `retries` attempts,
    /// the default escalation threshold, and the default 50 ms–2 s
    /// per-node backoff band jittered from `seed`.
    pub fn new(retries: u32, seed: u64) -> MicroReboot {
        MicroReboot::with_policy(
            retries,
            DEFAULT_ESCALATE_AFTER,
            DEFAULT_BACKOFF_BASE,
            DEFAULT_BACKOFF_CAP,
            seed,
        )
    }

    /// Full policy control: escalation threshold and backoff band.
    pub fn with_policy(
        retries: u32,
        escalate_after: u32,
        base: Duration,
        cap: Duration,
        seed: u64,
    ) -> MicroReboot {
        MicroReboot {
            retries,
            escalate_after,
            base,
            cap,
            seed,
            checkpoint: None,
            tree: None,
            pending: Vec::new(),
        }
    }

    /// The restart tree, once [`RecoveryStrategy::on_start`] has seen a
    /// partitioned application.
    pub fn tree(&self) -> Option<&RestartTree> {
        self.tree.as_ref()
    }

    /// The whole-process rung: byte-identical to
    /// [`RestartRetry`](crate::RestartRetry)'s recovery action.
    fn process_reboot(&self, app: &mut dyn Application, env: &mut Environment) {
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
    }
}

impl RecoveryStrategy for MicroReboot {
    fn name(&self) -> &'static str {
        "microreboot"
    }

    fn is_generic(&self) -> bool {
        // The component partition and the right to discard volatile state
        // are application knowledge — exactly what §2 denies a generic
        // mechanism.
        false
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
        if let Some(co) = app.as_crash_only() {
            let descs = co.components();
            self.pending = (0..descs.len()).map(|_| None).collect();
            self.tree =
                Some(RestartTree::new(descs, self.escalate_after, self.base, self.cap, self.seed));
        }
    }

    fn on_success(&mut self, req: &Request, app: &mut dyn Application, env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
        let routed = app.as_crash_only().map(|co| co.route(&req.body));
        if let (Some(c), Some(tree)) = (routed, self.tree.as_mut()) {
            tree.settle(c);
            if let Some(span) = self.pending[c].take() {
                let now = env.now();
                env.metrics.record_span("micro.ttr", tree.name(c), span, now);
            }
        }
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        // No request to route: fall back to the whole-process rung.
        if attempt > self.retries {
            return false;
        }
        self.process_reboot(app, env);
        true
    }

    fn on_failure_for(
        &mut self,
        req: &Request,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        let routed = app.as_crash_only().map(|co| co.route(&req.body));
        if attempt > self.retries {
            if let (Some(c), Some(tree)) = (routed, self.tree.as_ref()) {
                env.metrics.incr("micro.lost", tree.name(c), 1);
                self.pending[c] = None;
            }
            return false;
        }
        let scope = match (routed, self.tree.as_mut()) {
            (Some(c), Some(tree)) => {
                self.pending[c].get_or_insert_with(|| Span::begin(env.now()));
                tree.plan(c)
            }
            _ => RebootScope::Process,
        };
        match scope {
            RebootScope::Component(i) => {
                let tree = self.tree.as_mut().expect("scoped reboots require a tree");
                let cost = tree.charge(scope);
                let name = tree.name(i);
                let co = app.as_crash_only().expect("partition is stable across attempts");
                co.crash_component(i, env);
                co.boot_component(i, env);
                env.advance(cost);
                env.metrics.incr("micro.reboot", name, 1);
            }
            RebootScope::Subtree(p) => {
                let tree = self.tree.as_mut().expect("scoped reboots require a tree");
                let cost = tree.charge(scope);
                let name = tree.name(p);
                let members = tree.members(p);
                let co = app.as_crash_only().expect("partition is stable across attempts");
                // Crash leaves-first, boot parents-first.
                for &m in members.iter().rev() {
                    co.crash_component(m, env);
                }
                for &m in &members {
                    co.boot_component(m, env);
                }
                env.advance(cost);
                env.metrics.incr("micro.reboot.subtree", name, 1);
            }
            RebootScope::Process => {
                self.process_reboot(app, env);
                let label = match (routed, self.tree.as_ref()) {
                    (Some(c), Some(tree)) => tree.name(c),
                    _ => "unpartitioned",
                };
                env.metrics.incr("micro.reboot.process", label, 1);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_micro::StateKind;

    const fn comp(
        name: &'static str,
        state_kind: StateKind,
        parent: Option<usize>,
    ) -> ComponentDesc {
        ComponentDesc { name, state_kind, boot_cost: Duration::from_millis(10), parent }
    }

    static TOY: [ComponentDesc; 4] = [
        comp("root", StateKind::Volatile, None),
        comp("mid", StateKind::Volatile, Some(0)),
        comp("leaf", StateKind::Volatile, Some(1)),
        comp("vault", StateKind::DurableHard, Some(0)),
    ];

    fn tree(escalate_after: u32) -> RestartTree {
        RestartTree::new(&TOY, escalate_after, Duration::from_millis(50), Duration::from_secs(2), 7)
    }

    #[test]
    fn ladder_escalates_component_subtree_process() {
        let mut t = tree(2);
        // Each level absorbs two consecutive failures of the leaf.
        assert_eq!(t.plan(2), RebootScope::Component(2));
        assert_eq!(t.plan(2), RebootScope::Component(2));
        assert_eq!(t.plan(2), RebootScope::Subtree(1));
        assert_eq!(t.plan(2), RebootScope::Subtree(1));
        assert_eq!(t.plan(2), RebootScope::Subtree(0));
        assert_eq!(t.plan(2), RebootScope::Subtree(0));
        assert_eq!(t.plan(2), RebootScope::Process);
        assert_eq!(t.plan(2), RebootScope::Process, "the ladder stays at the top");
    }

    #[test]
    fn durable_hard_failures_go_straight_to_process() {
        let mut t = tree(2);
        assert_eq!(t.plan(3), RebootScope::Process);
        assert_eq!(t.plan(3), RebootScope::Process);
    }

    #[test]
    fn settle_closes_the_whole_ancestor_chain() {
        let mut t = tree(1);
        assert_eq!(t.plan(2), RebootScope::Component(2));
        assert_eq!(t.plan(2), RebootScope::Subtree(1));
        t.settle(2);
        assert_eq!(t.plan(2), RebootScope::Component(2), "breakers closed by the success");
    }

    #[test]
    fn zero_threshold_never_escalates() {
        let mut t = tree(0);
        for _ in 0..100 {
            assert_eq!(t.plan(2), RebootScope::Component(2));
        }
    }

    #[test]
    fn charge_sums_subtree_boot_costs_and_counts_reboots() {
        let mut t = tree(2);
        let solo = t.charge(RebootScope::Component(2));
        assert!(solo >= Duration::from_millis(10), "boot cost plus backoff");
        let sub = t.charge(RebootScope::Subtree(1));
        assert!(sub >= Duration::from_millis(20), "two members boot");
        assert_eq!(t.reboots(2), 2, "leaf rebooted alone and inside the subtree");
        assert_eq!(t.reboots(1), 1);
        assert_eq!(t.charge(RebootScope::Process), Duration::ZERO);
    }

    #[test]
    fn escalation_is_a_pure_function_of_the_call_sequence() {
        let drive = || {
            let mut t = tree(2);
            let mut scopes = Vec::new();
            for step in 0..40u32 {
                if step % 7 == 6 {
                    t.settle((step % 3) as usize);
                } else {
                    scopes.push(t.plan((step % 3) as usize));
                }
            }
            scopes
        };
        assert_eq!(drive(), drive());
    }
}
