//! The recovery-strategy abstraction.

use faultstudy_apps::{Application, Request, Response};
use faultstudy_env::Environment;
use std::fmt;

/// A recovery strategy supervising one application.
///
/// The [`supervisor`](crate::supervisor) calls the hooks in order:
/// [`RecoveryStrategy::on_start`] once before the workload,
/// [`RecoveryStrategy::on_success`] after every served request, and
/// [`RecoveryStrategy::on_failure`] when a request manifests a fault. The
/// failure hook performs the strategy's recovery actions and answers
/// whether the request should be retried.
pub trait RecoveryStrategy: fmt::Debug {
    /// Short identifier used in reports (`"restart"`, `"process-pair"`, …).
    fn name(&self) -> &'static str;

    /// Whether the strategy is application-generic in the paper's sense
    /// (no application knowledge beyond the opaque checkpoint).
    fn is_generic(&self) -> bool;

    /// Called once, after fault injection, before the first request.
    fn on_start(&mut self, app: &mut dyn Application, env: &mut Environment) {
        let _ = (app, env);
    }

    /// Called after `req` was served successfully.
    fn on_success(&mut self, req: &Request, app: &mut dyn Application, env: &mut Environment) {
        let _ = (req, app, env);
    }

    /// Called when a request failed on its `attempt`-th try (1-based).
    /// Performs recovery and returns `true` to retry the request, `false`
    /// to give up.
    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool;

    /// Request-aware variant of [`RecoveryStrategy::on_failure`]: the
    /// supervisor calls this one, passing the request whose attempt
    /// failed. Strategies that scope their recovery to part of the
    /// application (microreboot routes the failure to a component)
    /// override this; everything else ignores the request via the default
    /// delegation.
    fn on_failure_for(
        &mut self,
        req: &Request,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        let _ = req;
        self.on_failure(app, env, attempt)
    }

    /// Called by the supervisor when the strategy declined to retry
    /// (`on_failure*` returned `false`), as a last chance to keep the
    /// stream alive: a failure-oblivious strategy may substitute an
    /// answer for the doomed request instead of abandoning it. Returning
    /// `Some` makes the supervisor report the request as served —
    /// `Response::Denied` is a *visible* substitute (counted, excluded
    /// from goodput), `Response::Ok` a *silent* manufactured value whose
    /// cost only a correctness oracle can expose. The default declines,
    /// so every pre-existing strategy keeps its exact abandon semantics.
    fn manufacture(
        &mut self,
        req: &Request,
        app: &mut dyn Application,
        env: &mut Environment,
    ) -> Option<Response> {
        let _ = (req, app, env);
        None
    }
}

/// The baseline: no recovery at all — the first failure is fatal.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecovery;

impl RecoveryStrategy for NoRecovery {
    fn name(&self) -> &'static str {
        "none"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_failure(
        &mut self,
        _app: &mut dyn Application,
        _env: &mut Environment,
        _attempt: u32,
    ) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::MiniWeb;

    #[test]
    fn no_recovery_always_gives_up() {
        let mut env = Environment::builder().seed(1).build();
        let mut app = MiniWeb::new(&mut env);
        let mut s = NoRecovery;
        assert_eq!(s.name(), "none");
        assert!(s.is_generic());
        assert!(!s.on_failure(&mut app, &mut env, 1));
    }
}
