//! The profile-guided self-healer: a meta-strategy that picks its
//! recovery action per attempt from an observed failure profile.
//!
//! Runtime-profile self-healing (Fuad et al.) instruments an application,
//! watches how its failures actually behave, and picks the cheapest
//! repair that historically worked. Here the profile is a
//! [`FailureProfile`] distilled from an instrumented metrics registry —
//! typically a short microreboot probe run of the same fault plan — and
//! the healer's decision rules are a pure function of that snapshot plus
//! the attempt number, so the whole campaign stays deterministic:
//!
//! 1. Empty profile (nothing observed): behave exactly like
//!    [`RestartRetry`](crate::RestartRetry) — no evidence, no cleverness.
//! 2. Requests were lost even after full reboot escalation
//!    ([`FailureProfile::lost`] > 0): the defect is environment-
//!    independent and retrying is futile — retry once for the transient
//!    slice, then discard the request obliviously.
//! 3. Reboots were observed and they worked (`reboots > 0`, `lost == 0`):
//!    the failure lives in volatile state — scrub it in place, the
//!    cheapest repair that historically sufficed.
//! 4. Otherwise: plain generic restart-retry within the budget.

use crate::scrub::scrub_volatile_state;
use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request, Response};
use faultstudy_env::Environment;
use faultstudy_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// An observed failure signature, distilled from an instrumented run's
/// metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureProfile {
    /// Requests lost after full microreboot escalation (`micro.lost`) —
    /// the signature of an environment-independent defect.
    pub lost: u64,
    /// Component, subtree, and process reboots observed (`micro.reboot*`).
    pub reboots: u64,
    /// Circuit-breaker trips observed (`supervisor.breaker.trips`).
    pub breaker_trips: u64,
    /// Watchdog fires observed (`supervisor.watchdog`) — hangs.
    pub watchdog_fires: u64,
    /// Median observed time-to-recovery in simulated nanoseconds, if any
    /// recovery was observed (`recovery.ttr`).
    pub ttr_p50: Option<u64>,
}

impl FailureProfile {
    /// The empty profile: nothing observed, the healer stays a plain
    /// restart-retry.
    pub fn empty() -> FailureProfile {
        FailureProfile::default()
    }

    /// Distills a profile from an instrumented registry, summing each
    /// signal over every label so the profile does not depend on which
    /// strategy or component names produced it.
    pub fn from_registry(registry: &MetricsRegistry) -> FailureProfile {
        let sum_prefix = |prefix: &str| -> u64 {
            registry.counters().filter(|(key, _)| key.starts_with(prefix)).map(|(_, v)| v).sum()
        };
        let ttr_p50 = registry
            .histograms()
            .filter(|(key, _)| key.starts_with("recovery.ttr{"))
            .filter_map(|(_, h)| h.p50())
            .min();
        FailureProfile {
            lost: sum_prefix("micro.lost{"),
            reboots: sum_prefix("micro.reboot{")
                + sum_prefix("micro.reboot.subtree{")
                + sum_prefix("micro.reboot.process{"),
            breaker_trips: sum_prefix("supervisor.breaker.trips{"),
            watchdog_fires: sum_prefix("supervisor.watchdog{"),
            ttr_p50,
        }
    }

    /// Whether nothing was observed at all.
    pub fn is_empty(&self) -> bool {
        *self == FailureProfile::default()
    }
}

/// What the healer decided to do with one failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HealAction {
    Retry,
    Scrub,
    Discard,
}

/// The profile-guided meta-strategy.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::{FailureProfile, ProfileHealer, RecoveryStrategy};
///
/// let s = ProfileHealer::new(3, FailureProfile::empty());
/// assert_eq!(s.name(), "healer");
/// ```
#[derive(Debug)]
pub struct ProfileHealer {
    retries: u32,
    profile: FailureProfile,
    checkpoint: Option<AppState>,
    pending_discard: bool,
}

impl ProfileHealer {
    /// A healer with a retry budget of `retries`, guided by `profile`.
    /// With the empty profile it is byte-for-byte
    /// [`RestartRetry::new(retries)`](crate::RestartRetry::new).
    pub fn new(retries: u32, profile: FailureProfile) -> ProfileHealer {
        ProfileHealer { retries, profile, checkpoint: None, pending_discard: false }
    }

    /// The profile guiding the healer.
    pub fn profile(&self) -> &FailureProfile {
        &self.profile
    }

    /// The decision rules, a pure function of (profile, attempt).
    fn action(&self, attempt: u32) -> HealAction {
        if self.profile.is_empty() {
            return HealAction::Retry;
        }
        if self.profile.lost > 0 {
            // Reboot escalation still lost requests: retrying cannot win.
            // One retry covers the transient slice of the mix, then the
            // request is discarded obliviously.
            return if attempt > 1 { HealAction::Discard } else { HealAction::Retry };
        }
        if self.profile.reboots > 0 {
            // Reboots resolved everything that failed: the fault lives in
            // state that is legitimate to discard — scrub it in place.
            return HealAction::Scrub;
        }
        HealAction::Retry
    }
}

impl RecoveryStrategy for ProfileHealer {
    fn name(&self) -> &'static str {
        "healer"
    }

    fn is_generic(&self) -> bool {
        // The scrub arm uses the application's crash-only partition.
        false
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        match self.action(attempt) {
            HealAction::Discard => {
                self.pending_discard = true;
                false
            }
            HealAction::Scrub => {
                if attempt > self.retries {
                    return false;
                }
                if scrub_volatile_state(app, env) {
                    return true;
                }
                env.on_generic_recovery(app.owner());
                if let Some(cp) = &self.checkpoint {
                    app.restore(cp);
                }
                true
            }
            HealAction::Retry => {
                if attempt > self.retries {
                    return false;
                }
                env.on_generic_recovery(app.owner());
                if let Some(cp) = &self.checkpoint {
                    app.restore(cp);
                }
                true
            }
        }
    }

    fn manufacture(
        &mut self,
        req: &Request,
        _app: &mut dyn Application,
        _env: &mut Environment,
    ) -> Option<Response> {
        std::mem::take(&mut self.pending_discard)
            .then(|| Response::Denied(format!("discarded by healer: {}", req.body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::run_workload;
    use crate::RestartRetry;
    use faultstudy_apps::MiniWeb;

    fn ei_profile() -> FailureProfile {
        FailureProfile { lost: 2, reboots: 3, ..FailureProfile::default() }
    }

    fn leak_profile() -> FailureProfile {
        FailureProfile { reboots: 4, ..FailureProfile::default() }
    }

    #[test]
    fn empty_profile_degenerates_into_restart_retry() {
        let scenario = |strategy: &mut dyn RecoveryStrategy| {
            let mut env = Environment::builder().seed(7).proc_slots(6).build();
            let mut app = MiniWeb::new(&mut env);
            app.inject("apache-ei-01", &mut env).unwrap();
            let workload = vec![
                Request::new("GET /before"),
                app.trigger_request("apache-ei-01").unwrap(),
                Request::new("GET /after"),
            ];
            let run = run_workload(&mut app, &mut env, &workload, strategy);
            (run, env.now())
        };
        let baseline = scenario(&mut RestartRetry::new(3));
        let healer = scenario(&mut ProfileHealer::new(3, FailureProfile::empty()));
        assert_eq!(healer, baseline);
    }

    #[test]
    fn lost_requests_in_the_profile_turn_into_oblivious_discards() {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        let mut healer = ProfileHealer::new(3, ei_profile());
        let run = run_workload(&mut app, &mut env, &workload, &mut healer);
        assert!(run.survived, "the EI fault is discarded, not retried to death");
        assert_eq!(run.failures, 2, "exactly one exploratory retry");
    }

    #[test]
    fn reboot_heavy_profile_scrubs_in_place() {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.arm_defect("apache-edn-01").unwrap();
        let burst = app.trigger_request("apache-edn-01").unwrap();
        let workload: Vec<Request> = (0..6).map(|_| burst.clone()).collect();
        let mut healer = ProfileHealer::new(3, leak_profile());
        let run = run_workload(&mut app, &mut env, &workload, &mut healer);
        assert!(run.survived, "scrubbing drops the leaked units");
        assert_eq!(run.completed, 6);
    }

    #[test]
    fn profile_from_registry_sums_every_label() {
        let mut reg = MetricsRegistry::new();
        reg.incr("micro.lost", "web-worker-pool", 1);
        reg.incr("micro.lost", "web-cache", 2);
        reg.incr("micro.reboot", "web-worker-pool", 3);
        reg.incr("micro.reboot.process", "de-editor-buffer", 1);
        reg.incr("supervisor.watchdog", "microreboot", 2);
        reg.incr("unrelated.counter", "x", 99);
        let p = FailureProfile::from_registry(&reg);
        assert_eq!(p.lost, 3);
        assert_eq!(p.reboots, 4);
        assert_eq!(p.watchdog_fires, 2);
        assert_eq!(p.breaker_trips, 0);
        assert_eq!(p.ttr_p50, None);
        assert!(!p.is_empty());
        assert_eq!(FailureProfile::from_registry(&MetricsRegistry::new()), FailureProfile::empty());
    }
}
