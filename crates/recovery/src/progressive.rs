//! Progressive retry with environment perturbation \[Wang93\].
//!
//! §7: such schemes "increase the non-determinism in the application by
//! re-ordering events such as message receives: these are basically
//! techniques to induce change to the external environment … they increase
//! the chance that an environment-dependent fault will experience a
//! different operating environment during recovery". Each successive
//! attempt here escalates: restore and retry, then force a fresh thread
//! interleaving (the message-reorder analogue), then back off
//! exponentially in simulated time so slowly-healing conditions get their
//! chance. The escalation never converts an environment-*independent*
//! fault — the paper is explicit that these techniques do not — and the
//! recovery-matrix experiment confirms it.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;
use faultstudy_sim::rng::DetRng;
use faultstudy_sim::time::Duration;

/// Escalating retry: restore → reseed interleaving → exponential backoff.
#[derive(Debug)]
pub struct ProgressiveRetry {
    retries: u32,
    backoff_base: Duration,
    checkpoint: Option<AppState>,
    perturbations: u32,
}

impl ProgressiveRetry {
    /// Up to `retries` attempts with a 500 ms base backoff.
    pub fn new(retries: u32) -> ProgressiveRetry {
        ProgressiveRetry {
            retries,
            backoff_base: Duration::from_millis(500),
            checkpoint: None,
            perturbations: 0,
        }
    }

    /// Overrides the base backoff.
    pub fn with_backoff(mut self, base: Duration) -> ProgressiveRetry {
        self.backoff_base = base;
        self
    }

    /// Interleaving perturbations applied so far.
    pub fn perturbations(&self) -> u32 {
        self.perturbations
    }
}

impl RecoveryStrategy for ProgressiveRetry {
    fn name(&self) -> &'static str {
        "progressive"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        if attempt >= 2 {
            // Stage 2: induce a different event ordering.
            let seed = env.rng().next_u64();
            env.force_interleave_seed(seed);
            self.perturbations += 1;
        }
        if attempt >= 3 {
            // Stage 3: exponential backoff in simulated time.
            let factor = 1u64 << (attempt - 3).min(16);
            env.advance(self.backoff_base.saturating_mul(factor));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::{MiniDb, Request};
    use faultstudy_sim::time::SimTime;

    #[test]
    fn escalation_stages_fire_in_order() {
        let mut env = Environment::builder().seed(4).build();
        let mut app = MiniDb::new(&mut env);
        let mut s = ProgressiveRetry::new(5).with_backoff(Duration::from_millis(100));
        s.on_start(&mut app, &mut env);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert_eq!(s.perturbations(), 0, "attempt 1 is a plain retry");
        assert!(s.on_failure(&mut app, &mut env, 2));
        assert_eq!(s.perturbations(), 1, "attempt 2 reseeds the interleaving");
        let before = env.now();
        assert!(s.on_failure(&mut app, &mut env, 3));
        // recovery (1s) + backoff (100ms)
        assert_eq!(env.now(), before + env.recovery_takes() + Duration::from_millis(100));
        assert!(!s.on_failure(&mut app, &mut env, 6));
    }

    #[test]
    fn reseeding_lets_a_raced_request_through() {
        // Find a seed whose *initial* interleaving crashes the race, then
        // check progressive retry recovers it within budget.
        for seed in 0..64 {
            let mut env = Environment::builder().seed(seed).build();
            let mut app = MiniDb::new(&mut env);
            app.inject("mysql-edt-01", &mut env).unwrap();
            let req = Request::new("SHUTDOWN");
            if app.handle(&req, &mut env).is_ok() {
                continue; // this seed does not trip the race
            }
            let mut s = ProgressiveRetry::new(8);
            s.on_start(&mut app, &mut env);
            let mut survived = false;
            for attempt in 1..=8 {
                if !s.on_failure(&mut app, &mut env, attempt) {
                    break;
                }
                if app.handle(&req, &mut env).is_ok() {
                    survived = true;
                    break;
                }
            }
            assert!(survived, "seed {seed}: race not recovered in 8 perturbedretries");
            return;
        }
        panic!("no seed tripped the race at all — gadget window too narrow");
    }

    #[test]
    fn exponential_backoff_grows() {
        let mut env = Environment::builder().seed(4).build();
        let mut app = MiniDb::new(&mut env);
        let mut s = ProgressiveRetry::new(10).with_backoff(Duration::from_millis(10));
        let t0 = env.now();
        s.on_failure(&mut app, &mut env, 3);
        let d3 = env.now() - t0;
        let t1 = env.now();
        s.on_failure(&mut app, &mut env, 4);
        let d4 = env.now() - t1;
        assert!(d4 > d3, "attempt 4 backs off longer than attempt 3");
        let _ = SimTime::ZERO;
    }
}
