//! The supervisor: drives a workload against an application under a
//! recovery strategy and reports whether the work survived.
//!
//! Two entry points share one loop:
//!
//! - [`run_workload`] — the paper's bare survival experiment: retry until
//!   the strategy gives up, no supervisor policy of its own.
//! - [`run_workload_supervised`] — the hardened harness around the same
//!   loop: a watchdog deadline that detects hung attempts in simulated
//!   time, bounded exponential backoff between retries, a circuit breaker
//!   that trips to graceful degradation instead of burning the whole retry
//!   budget, and an explicit, policy-gated environment-scrubbing step —
//!   the only way non-transient conditions may be cleared. An optional
//!   [`EnvHook`] runs before every attempt, which is how a fault-injection
//!   plan perturbs the environment on its own schedule.
//!
//! With the [`SupervisorConfig::permissive`] configuration the hardened
//! loop degenerates byte-for-byte into the bare one: every policy is
//! disabled and the simulation is untouched.

use crate::backoff::BackoffPolicy;
use crate::breaker::CircuitBreaker;
use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppFailure, Application, Request};
use faultstudy_env::Environment;
use faultstudy_obs::Span;
use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of supervising one workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Requests that were eventually served.
    pub completed: usize,
    /// Requests in the workload.
    pub total: usize,
    /// Fault manifestations observed (first failures and failed retries).
    pub failures: u32,
    /// Recovery actions the strategy performed.
    pub recoveries: u32,
    /// Whether the whole workload was eventually served. This is the
    /// paper's survival criterion: every requested task must execute — "we
    /// do not assume a user will generously avoid the fault trigger" (§7).
    pub survived: bool,
    /// Reason of the final failure when not survived; always `None` on a
    /// surviving run, even if transient failures were recovered along the
    /// way.
    pub last_failure: Option<String>,
}

/// An environment perturbation source consulted before every attempt.
///
/// The supervisor owns *when* the hook runs; the hook owns *what* changes.
/// A fault-injection plan implements this to apply its scheduled events as
/// simulated time reaches them, without the supervisor knowing anything
/// about injection.
pub trait EnvHook {
    /// Called immediately before each request attempt, after the attempt's
    /// service time has been charged to the clock.
    fn pre_attempt(&mut self, env: &mut Environment);
}

/// Policy knobs of the hardened supervisor.
///
/// Every knob has a neutral setting under which the hardened loop is
/// byte-identical to [`run_workload`]; [`SupervisorConfig::permissive`]
/// selects all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Hang-detection deadline. A hung attempt costs this much simulated
    /// time before the watchdog declares it failed and counts the fire;
    /// `None` detects hangs for free (the bare loop's behavior).
    pub watchdog: Option<Duration>,
    /// Delay schedule between retries.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker threshold in consecutive recovered failures;
    /// 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Scrub the environment after every Nth consecutive failed attempt of
    /// a request; 0 never scrubs. Scrubbing is the *only* way the
    /// supervisor clears non-transient conditions, which is why it is a
    /// config gate and not a default (§6: such repairs are operator
    /// actions, outside any generic mechanism).
    pub scrub_every: u32,
    /// Simulated service time charged before every attempt. The bare loop
    /// charges nothing; an injection campaign needs requests to consume
    /// time so scheduled events can come due between them.
    pub request_takes: Duration,
}

impl SupervisorConfig {
    /// The configuration under which [`run_workload_supervised`] reproduces
    /// [`run_workload`] exactly: no watchdog cost, no backoff, breaker
    /// disabled, never scrubs, requests are instantaneous.
    pub fn permissive() -> SupervisorConfig {
        SupervisorConfig {
            watchdog: None,
            backoff: BackoffPolicy::none(),
            breaker_threshold: 0,
            scrub_every: 0,
            request_takes: Duration::ZERO,
        }
    }
}

/// An end-to-end deadline shared by every hop of a multi-tier call chain.
///
/// A request that fans out across tiers (client → miniweb → minidb) gets
/// ONE watchdog budget for the whole chain, fixed at the instant the
/// chain begins. Each hop's supervisor charges its hang-detection and
/// backoff delays against the *remaining* budget via
/// [`ChainDeadline::clamp`], so nested retries cannot stack per-hop
/// deadlines past the outer budget — without this, a chain of H hops
/// with per-hop watchdog W could burn H·W of user-visible time on a
/// single request, which is exactly the end-to-end-timeout bug the
/// fault-tolerance literature warns layered retry designs about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainDeadline {
    deadline: SimTime,
}

impl ChainDeadline {
    /// Opens a chain budget of `budget` starting at `now`.
    pub fn new(now: SimTime, budget: Duration) -> ChainDeadline {
        ChainDeadline { deadline: now.saturating_add(budget) }
    }

    /// The absolute instant the chain budget runs out.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Budget left at `now` (zero once expired).
    pub fn remaining(&self, now: SimTime) -> Duration {
        self.deadline.saturating_since(now)
    }

    /// Whether the budget is exhausted at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        self.remaining(now) == Duration::ZERO
    }

    /// Clamps a delay a hop wants to charge (a watchdog deadline, a
    /// backoff pause) to the budget remaining at `now`.
    pub fn clamp(&self, now: SimTime, want: Duration) -> Duration {
        want.min(self.remaining(now))
    }
}

/// Outcome of one hardened supervision: the plain [`WorkloadRun`] plus the
/// supervisor's own event counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisedRun {
    /// The underlying workload outcome.
    pub run: WorkloadRun,
    /// Hung attempts detected by the watchdog deadline.
    pub watchdog_fires: u32,
    /// Circuit-breaker trips (at most one per run: a trip degrades).
    pub breaker_trips: u32,
    /// Environment scrubs performed between retries.
    pub scrubs: u32,
    /// Requests shed unattempted after the breaker degraded the run.
    pub shed: usize,
    /// Total simulated time spent in backoff delays.
    pub backoff_total: Duration,
}

/// Runs `workload` against `app` under `strategy` with the bare,
/// policy-free loop.
///
/// Each request is attempted until it succeeds or the strategy gives up.
/// Retries clear the request's one-shot [`Request::timing_event`]: the
/// event came from the environment's timing, and recovery replays the
/// request, not the environment.
///
/// # Example
///
/// ```
/// use faultstudy_apps::{Application, MiniWeb, Request};
/// use faultstudy_env::Environment;
/// use faultstudy_recovery::{run_workload, RestartRetry};
///
/// let mut env = Environment::builder().seed(1).build();
/// let mut app = MiniWeb::new(&mut env);
/// let workload = vec![Request::new("GET /a"), Request::new("GET /b")];
/// let mut strategy = RestartRetry::new(3);
/// let run = run_workload(&mut app, &mut env, &workload, &mut strategy);
/// assert!(run.survived);
/// assert_eq!(run.completed, 2);
/// ```
pub fn run_workload(
    app: &mut dyn Application,
    env: &mut Environment,
    workload: &[Request],
    strategy: &mut dyn RecoveryStrategy,
) -> WorkloadRun {
    run_workload_supervised(app, env, workload, strategy, &SupervisorConfig::permissive(), None).run
}

/// Outcome of supervising one request through [`RequestSupervisor::serve`].
///
/// `failed_attempts` counts the attempts that manifested a fault before
/// the terminal event (0 on a clean first-try success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request was eventually served.
    Served {
        /// Failed attempts preceding the success.
        failed_attempts: u32,
        /// Whether the serving answer was a graceful denial rather than a
        /// success — the traffic engine's goodput excludes denials, while
        /// availability counts them as answered.
        denied: bool,
    },
    /// The strategy gave up; the request is lost.
    Abandoned {
        /// Failed attempts, including the final one.
        failed_attempts: u32,
    },
    /// The circuit breaker tripped while recovering this request: the
    /// request is lost and the supervisor is degraded — every later
    /// request is [`ServeOutcome::Shed`] without an attempt.
    Degraded {
        /// Failed attempts, including the one that tripped the breaker.
        failed_attempts: u32,
    },
    /// Shed unattempted because the supervisor had already degraded.
    Shed,
}

/// The hardened per-request supervision loop, reusable one request at a
/// time.
///
/// [`run_workload_supervised`] drives a fixed request slice through it;
/// the traffic engine drives it from an open-loop arrival queue instead,
/// one [`RequestSupervisor::serve`] call per arriving request. Both paths
/// share this struct, so policy semantics (watchdog, backoff, breaker,
/// scrub) cannot drift between the rep-driven and queue-driven harnesses.
#[derive(Debug)]
pub struct RequestSupervisor {
    breaker: CircuitBreaker,
    degraded: bool,
    watchdog_fires: u32,
    breaker_trips: u32,
    scrubs: u32,
    backoff_total: Duration,
    failures: u32,
    recoveries: u32,
    // The failure that ends a non-surviving run; formatted once at the
    // end instead of per manifestation — recovered failures never
    // surface.
    last_failure: Option<AppFailure>,
}

impl RequestSupervisor {
    /// Opens a supervised session: gives `strategy` its start-of-workload
    /// hook (checkpointing strategies take their initial checkpoint here)
    /// and arms the circuit breaker from `config`.
    pub fn begin(
        app: &mut dyn Application,
        env: &mut Environment,
        strategy: &mut dyn RecoveryStrategy,
        config: &SupervisorConfig,
    ) -> RequestSupervisor {
        strategy.on_start(app, env);
        RequestSupervisor {
            breaker: CircuitBreaker::new(config.breaker_threshold),
            degraded: false,
            watchdog_fires: 0,
            breaker_trips: 0,
            scrubs: 0,
            backoff_total: Duration::ZERO,
            failures: 0,
            recoveries: 0,
            last_failure: None,
        }
    }

    /// Attempts `original` until it is served, the strategy gives up, or
    /// the breaker trips, applying the watchdog/backoff/scrub policies of
    /// `config` and consulting `hook` before every attempt.
    pub fn serve(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        original: &Request,
        strategy: &mut dyn RecoveryStrategy,
        config: &SupervisorConfig,
        hook: &mut Option<&mut dyn EnvHook>,
    ) -> ServeOutcome {
        self.serve_within(app, env, original, strategy, config, hook, None)
    }

    /// [`RequestSupervisor::serve`] with an optional end-to-end chain
    /// budget. With `chain` set, the hop's watchdog and backoff charges
    /// are clamped to the budget remaining on the whole chain, and an
    /// exhausted budget abandons the request instead of retrying — one
    /// deadline for the chain, not one per hop. With `None` this is
    /// byte-identical to `serve`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_within(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        original: &Request,
        strategy: &mut dyn RecoveryStrategy,
        config: &SupervisorConfig,
        hook: &mut Option<&mut dyn EnvHook>,
        chain: Option<&ChainDeadline>,
    ) -> ServeOutcome {
        if self.degraded {
            return ServeOutcome::Shed;
        }
        // Retries replay the request without its one-shot timing event; the
        // request is only cloned when that distinction exists, so the happy
        // path stays allocation-free.
        let mut retry_req: Option<Request> = None;
        let mut attempt = 0u32;
        // Opened (in simulated time) at a request's first failure; closed
        // when the request finally succeeds. The span covers every retry,
        // so its length is the user-visible time-to-recovery.
        let mut ttr: Option<Span> = None;
        loop {
            if chain.is_some_and(|c| c.expired(env.now())) {
                // The chain budget ran out (spent here or at another hop):
                // no further attempt may be charged to the user.
                return ServeOutcome::Abandoned { failed_attempts: attempt };
            }
            env.advance(config.request_takes);
            if let Some(h) = hook.as_deref_mut() {
                h.pre_attempt(env);
            }
            let req = retry_req.as_ref().unwrap_or(original);
            match app.handle(req, env) {
                Ok(resp) => {
                    let denied = !resp.is_ok();
                    strategy.on_success(req, app, env);
                    self.breaker.record_success();
                    if let Some(span) = ttr {
                        let now = env.now();
                        env.metrics.record_span("recovery.ttr", strategy.name(), span, now);
                        env.metrics.record("recovery.retries", strategy.name(), u64::from(attempt));
                        record_oracle_violations(&*app, env, strategy.name());
                    }
                    return ServeOutcome::Served { failed_attempts: attempt, denied };
                }
                Err(failure) => {
                    self.failures += 1;
                    self.last_failure = Some(failure);
                    attempt += 1;
                    ttr.get_or_insert_with(|| Span::begin(env.now()));
                    // A hang is not observable as a return value in the
                    // real world: the watchdog's deadline is what converts
                    // it into a detected failure, and the detection costs
                    // the full deadline in simulated time.
                    if matches!(self.last_failure, Some(AppFailure::Hang(_))) {
                        if let Some(deadline) = config.watchdog {
                            // Under a chain budget the hang detection may
                            // only consume what is left of the whole
                            // chain's deadline, never a fresh per-hop one.
                            let charge = chain.map_or(deadline, |c| c.clamp(env.now(), deadline));
                            env.advance(charge);
                            self.watchdog_fires += 1;
                            env.metrics.incr("supervisor.watchdog", strategy.name(), 1);
                        }
                    }
                    if chain.is_some_and(|c| c.expired(env.now())) {
                        // Detection consumed the rest of the chain budget:
                        // no recovery or retry may be charged past it.
                        return ServeOutcome::Abandoned { failed_attempts: attempt };
                    }
                    if !strategy.on_failure_for(req, app, env, attempt) {
                        // The strategy declined to retry. A failure-oblivious
                        // strategy gets a last chance to substitute an answer
                        // and keep the stream alive: a `Denied` substitute is
                        // a visible discard, an `Ok` one a silent manufactured
                        // value — the supervisor counts each kind so the
                        // campaign can price the rescue.
                        if let Some(resp) = strategy.manufacture(req, app, env) {
                            let denied = !resp.is_ok();
                            let kind = if denied {
                                "oblivious.discarded"
                            } else {
                                "oblivious.manufactured"
                            };
                            env.metrics.incr(kind, strategy.name(), 1);
                            self.breaker.record_success();
                            if let Some(span) = ttr {
                                let now = env.now();
                                env.metrics.record_span("recovery.ttr", strategy.name(), span, now);
                                env.metrics.record(
                                    "recovery.retries",
                                    strategy.name(),
                                    u64::from(attempt),
                                );
                            }
                            record_oracle_violations(&*app, env, strategy.name());
                            return ServeOutcome::Served { failed_attempts: attempt, denied };
                        }
                        return ServeOutcome::Abandoned { failed_attempts: attempt };
                    }
                    self.recoveries += 1;
                    if self.breaker.record_failure() {
                        // Graceful degradation: the last checkpoint stands
                        // and later requests are shed, not attempted.
                        self.breaker_trips += 1;
                        env.metrics.incr("supervisor.breaker.trips", strategy.name(), 1);
                        self.degraded = true;
                        return ServeOutcome::Degraded { failed_attempts: attempt };
                    }
                    if config.scrub_every > 0 && attempt.is_multiple_of(config.scrub_every) {
                        env.scrub();
                        self.scrubs += 1;
                        env.metrics.incr("supervisor.scrubs", strategy.name(), 1);
                    }
                    let delay = {
                        let want = config.backoff.delay(attempt);
                        chain.map_or(want, |c| c.clamp(env.now(), want))
                    };
                    if delay > Duration::ZERO {
                        env.advance(delay);
                        self.backoff_total = self.backoff_total + delay;
                        env.metrics.record_duration("supervisor.backoff", strategy.name(), delay);
                    }
                    // The retry replays the request without its one-shot
                    // environmental timing event.
                    if original.timing_event && retry_req.is_none() {
                        let mut replay = original.clone();
                        replay.timing_event = false;
                        retry_req = Some(replay);
                    }
                }
            }
        }
    }

    /// Whether the breaker has tripped; every further serve is shed.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Hung attempts detected by the watchdog deadline so far.
    pub fn watchdog_fires(&self) -> u32 {
        self.watchdog_fires
    }

    /// Circuit-breaker trips so far (0 or 1).
    pub fn breaker_trips(&self) -> u32 {
        self.breaker_trips
    }

    /// Environment scrubs performed between retries so far.
    pub fn scrubs(&self) -> u32 {
        self.scrubs
    }

    /// Total simulated time spent in backoff delays so far.
    pub fn backoff_total(&self) -> Duration {
        self.backoff_total
    }

    /// Fault manifestations observed (first failures and failed retries).
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Recovery actions the strategy performed.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// The most recent fault manifestation, recovered or not.
    pub fn last_failure(&self) -> Option<&AppFailure> {
        self.last_failure.as_ref()
    }
}

/// Evaluates the application's correctness oracle after a recovery and
/// records each violation under `oracle.violations` labelled by strategy.
///
/// Gated on metrics being enabled — the oracle is read-only over app and
/// environment and never advances the clock, so the simulation itself is
/// byte-identical whether or not it runs; the gate only keeps the
/// uninstrumented hot path free of the state walk.
fn record_oracle_violations(app: &dyn Application, env: &mut Environment, strategy: &'static str) {
    if !env.metrics.is_enabled() {
        return;
    }
    let violations = app.check_oracle(env);
    if !violations.is_empty() {
        env.metrics.incr("oracle.violations", strategy, violations.len() as u64);
    }
}

/// Runs `workload` under `strategy` with the hardened supervisor policies
/// of `config`, consulting `hook` before every attempt.
///
/// Watchdog fires, breaker trips, scrubs, and backoff delays are recorded
/// through the environment's metrics sink (as `supervisor.*` keys labelled
/// by strategy), all in simulated time, so instrumentation never perturbs
/// the run.
pub fn run_workload_supervised(
    app: &mut dyn Application,
    env: &mut Environment,
    workload: &[Request],
    strategy: &mut dyn RecoveryStrategy,
    config: &SupervisorConfig,
    mut hook: Option<&mut dyn EnvHook>,
) -> SupervisedRun {
    let mut sup = RequestSupervisor::begin(app, env, strategy, config);
    let mut out = SupervisedRun {
        run: WorkloadRun {
            completed: 0,
            total: workload.len(),
            failures: 0,
            recoveries: 0,
            survived: true,
            last_failure: None,
        },
        watchdog_fires: 0,
        breaker_trips: 0,
        scrubs: 0,
        shed: 0,
        backoff_total: Duration::ZERO,
    };
    for (index, original) in workload.iter().enumerate() {
        match sup.serve(app, env, original, strategy, config, &mut hook) {
            ServeOutcome::Served { .. } => out.run.completed += 1,
            ServeOutcome::Abandoned { .. } => {
                out.run.survived = false;
                break;
            }
            ServeOutcome::Degraded { .. } => {
                // §7's survival criterion: shed work was requested and
                // never executed, so the run is honestly not survived.
                out.run.survived = false;
                out.shed = workload.len() - index - 1;
                break;
            }
            ServeOutcome::Shed => unreachable!("loop breaks at the degrading request"),
        }
    }
    out.watchdog_fires = sup.watchdog_fires();
    out.breaker_trips = sup.breaker_trips();
    out.scrubs = sup.scrubs();
    out.backoff_total = sup.backoff_total();
    out.run.failures = sup.failures();
    out.run.recoveries = sup.recoveries();
    if !out.run.survived {
        // Recovered transients are not "the final failure": a surviving
        // run's contract is that every request was eventually served, so
        // only a defeated run reports one.
        out.run.last_failure = sup.last_failure.map(|f| f.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoRecovery, ProgressiveRetry, RestartRetry};
    use faultstudy_apps::MiniWeb;

    fn setup() -> (Environment, MiniWeb) {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let app = MiniWeb::new(&mut env);
        (env, app)
    }

    fn hardened() -> SupervisorConfig {
        SupervisorConfig {
            watchdog: Some(Duration::from_secs(4)),
            backoff: BackoffPolicy::new(Duration::from_millis(50), Duration::from_secs(2), 3),
            breaker_threshold: 4,
            scrub_every: 0,
            request_takes: Duration::from_millis(100),
        }
    }

    #[test]
    fn healthy_workload_completes_without_recoveries() {
        let (mut env, mut app) = setup();
        let workload: Vec<Request> =
            (0..5).map(|i| Request::new(format!("GET /page{i}"))).collect();
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(2));
        assert!(run.survived);
        assert_eq!(run.completed, 5);
        assert_eq!(run.failures, 0);
        assert_eq!(run.recoveries, 0);
        assert!(run.last_failure.is_none());
    }

    #[test]
    fn deterministic_fault_defeats_generic_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(!run.survived);
        assert_eq!(run.failures, 4, "initial failure plus three failed retries");
        assert_eq!(run.recoveries, 3);
        assert!(run.last_failure.unwrap().contains("hash"));
    }

    #[test]
    fn transient_fault_survives_generic_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(run.survived);
        assert_eq!(run.recoveries, 1, "one restart cleared the hung children");
        assert!(run.last_failure.is_none(), "surviving runs report no final failure");
    }

    #[test]
    fn no_recovery_fails_on_first_fault() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut NoRecovery);
        assert!(!run.survived);
        assert_eq!(run.failures, 1);
        assert_eq!(run.completed, 0);
    }

    #[test]
    fn remaining_workload_continues_after_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-07", &mut env).unwrap();
        let mut workload = vec![
            Request::new("GET /before"),
            app.trigger_request("apache-edt-07").unwrap(),
            Request::new("GET /after"),
        ];
        workload[0].timing_event = false;
        let run = run_workload(&mut app, &mut env, &workload, &mut ProgressiveRetry::new(5));
        assert!(run.survived);
        assert_eq!(run.completed, 3);
        assert!(run.last_failure.is_none(), "surviving runs report no final failure");
    }

    #[test]
    fn instrumented_run_records_ttr_and_retries() {
        let mut env = Environment::builder().seed(7).proc_slots(6).metrics(true).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(run.survived);
        let reg = env.metrics.take().unwrap();
        let ttr = reg.histogram("recovery.ttr", "restart").expect("ttr recorded");
        assert_eq!(ttr.count(), 1);
        assert!(ttr.max().unwrap() > 0, "recovery consumed simulated time");
        let retries = reg.histogram("recovery.retries", "restart").unwrap();
        assert_eq!(retries.max(), Some(1));
    }

    #[test]
    fn uninstrumented_run_is_identical_to_instrumented() {
        let run_with = |metrics: bool| {
            let mut env = Environment::builder().seed(7).proc_slots(6).metrics(metrics).build();
            let mut app = MiniWeb::new(&mut env);
            app.inject("apache-edt-07", &mut env).unwrap();
            let workload = vec![
                Request::new("GET /a"),
                app.trigger_request("apache-edt-07").unwrap(),
                Request::new("GET /b"),
            ];
            (run_workload(&mut app, &mut env, &workload, &mut ProgressiveRetry::new(5)), env.now())
        };
        assert_eq!(run_with(false), run_with(true), "recording must not perturb the simulation");
    }

    #[test]
    fn empty_workload_trivially_survives() {
        let (mut env, mut app) = setup();
        let run = run_workload(&mut app, &mut env, &[], &mut NoRecovery);
        assert!(run.survived);
        assert_eq!(run.total, 0);
    }

    // --- hardened supervisor ---

    #[test]
    fn permissive_supervision_reproduces_the_bare_loop_exactly() {
        let scenario = |supervised: bool| {
            let mut env = Environment::builder().seed(7).proc_slots(6).build();
            let mut app = MiniWeb::new(&mut env);
            app.inject("apache-edt-07", &mut env).unwrap();
            let workload = vec![
                Request::new("GET /a"),
                app.trigger_request("apache-edt-07").unwrap(),
                Request::new("GET /b"),
            ];
            let mut strategy = RestartRetry::new(3);
            let run = if supervised {
                run_workload_supervised(
                    &mut app,
                    &mut env,
                    &workload,
                    &mut strategy,
                    &SupervisorConfig::permissive(),
                    None,
                )
                .run
            } else {
                run_workload(&mut app, &mut env, &workload, &mut strategy)
            };
            (run, env.now())
        };
        assert_eq!(scenario(true), scenario(false));
    }

    #[test]
    fn watchdog_detects_hangs_and_charges_the_deadline() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-05", &mut env).unwrap(); // slow DNS: hangs
        let workload = vec![app.trigger_request("apache-edt-05").unwrap()];
        let out = run_workload_supervised(
            &mut app,
            &mut env,
            &workload,
            &mut RestartRetry::new(3),
            &hardened(),
            None,
        );
        assert!(out.run.survived, "DNS healed while the watchdog waited");
        assert!(out.watchdog_fires >= 1);
        assert!(env.now() >= faultstudy_sim::time::SimTime::from_secs(4), "deadline was charged");
    }

    #[test]
    fn breaker_trips_and_sheds_the_remaining_workload() {
        let (mut env, mut app) = setup();
        app.inject("apache-ei-01", &mut env).unwrap();
        let mut workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        workload.push(Request::new("GET /never-reached"));
        workload.push(Request::new("GET /never-reached-either"));
        let mut config = hardened();
        config.breaker_threshold = 2;
        let out = run_workload_supervised(
            &mut app,
            &mut env,
            &workload,
            &mut ProgressiveRetry::new(5),
            &config,
            None,
        );
        assert!(!out.run.survived);
        assert_eq!(out.breaker_trips, 1);
        assert_eq!(out.run.recoveries, 2, "degraded before burning the budget of 5");
        assert_eq!(out.shed, 2, "remaining requests shed, not attempted");
        assert_eq!(out.run.completed, 0);
    }

    #[test]
    fn scrubbing_clears_nontransient_conditions_between_retries() {
        let run_with = |scrub_every: u32| {
            let (mut env, mut app) = setup();
            app.inject("apache-edn-02", &mut env).unwrap(); // fd exhaustion
            let workload = vec![app.trigger_request("apache-edn-02").unwrap()];
            let mut config = hardened();
            config.scrub_every = scrub_every;
            run_workload_supervised(
                &mut app,
                &mut env,
                &workload,
                &mut RestartRetry::new(3),
                &config,
                None,
            )
        };
        let without = run_with(0);
        assert!(!without.run.survived, "fd exhaustion defeats generic recovery");
        assert_eq!(without.scrubs, 0);
        let with = run_with(1);
        assert!(with.run.survived, "the scrub closed the leaked descriptors");
        assert!(with.scrubs >= 1);
    }

    #[test]
    fn backoff_advances_simulated_time_deterministically() {
        let once = || {
            let (mut env, mut app) = setup();
            app.inject("apache-ei-01", &mut env).unwrap();
            let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
            let out = run_workload_supervised(
                &mut app,
                &mut env,
                &workload,
                &mut RestartRetry::new(3),
                &hardened(),
                None,
            );
            (out, env.now())
        };
        let (a, now_a) = once();
        let (b, now_b) = once();
        assert_eq!(a, b);
        assert_eq!(now_a, now_b);
        assert!(a.backoff_total > Duration::ZERO);
    }

    // --- end-to-end chain deadline ---

    /// A tier that hangs on every request — the worst case for stacked
    /// per-hop watchdogs.
    struct AlwaysHangs(faultstudy_env::OwnerId);

    impl Application for AlwaysHangs {
        fn kind(&self) -> faultstudy_core::taxonomy::AppKind {
            faultstudy_core::taxonomy::AppKind::Apache
        }
        fn owner(&self) -> faultstudy_env::OwnerId {
            self.0
        }
        fn handle(
            &mut self,
            _req: &Request,
            _env: &mut Environment,
        ) -> Result<faultstudy_apps::Response, AppFailure> {
            Err(AppFailure::Hang("wedged tier".to_owned()))
        }
        fn snapshot(&self) -> faultstudy_apps::AppState {
            faultstudy_apps::AppState::encode(&0u8)
        }
        fn restore(&mut self, _state: &faultstudy_apps::AppState) {}
        fn inject(
            &mut self,
            slug: &str,
            _env: &mut Environment,
        ) -> Result<(), faultstudy_apps::InjectError> {
            Err(faultstudy_apps::InjectError { slug: slug.to_owned() })
        }
        fn trigger_request(&self, _slug: &str) -> Option<Request> {
            None
        }
        fn benign_request(&self) -> Request {
            Request::new("noop")
        }
    }

    /// Three hung hops, each with a 4 s per-hop watchdog and a retry
    /// budget. Without a chain deadline every hop charges its own
    /// watchdog per attempt (9 fires, 36 s of user-visible time for one
    /// request). Under one 4 s [`ChainDeadline`] the whole chain may
    /// consume the budget exactly once.
    #[test]
    fn chain_deadline_is_charged_once_across_all_hops() {
        let drive = |chained: bool| {
            let mut env = Environment::builder().seed(7).build();
            let owner = env.register_owner("always-hangs");
            let mut app = AlwaysHangs(owner);
            let mut strategy = RestartRetry::new(2);
            let config = SupervisorConfig {
                watchdog: Some(Duration::from_secs(4)),
                backoff: BackoffPolicy::none(),
                breaker_threshold: 0,
                scrub_every: 0,
                request_takes: Duration::ZERO,
            };
            let mut sup = RequestSupervisor::begin(&mut app, &mut env, &mut strategy, &config);
            let chain = ChainDeadline::new(env.now(), Duration::from_secs(4));
            let req = Request::new("multi-hop");
            for _hop in 0..3 {
                let outcome = sup.serve_within(
                    &mut app,
                    &mut env,
                    &req,
                    &mut strategy,
                    &config,
                    &mut None,
                    chained.then_some(&chain),
                );
                assert!(matches!(outcome, ServeOutcome::Abandoned { .. }));
            }
            (env.now(), sup.watchdog_fires())
        };

        let (unbounded_now, unbounded_fires) = drive(false);
        assert_eq!(unbounded_fires, 9, "3 hops x 3 attempts, one watchdog each");
        // 9 watchdog deadlines (4 s each) plus 6 process restarts (1 s
        // each) from the strategy's recoveries: per-hop deadlines stack.
        assert_eq!(unbounded_now, SimTime::from_secs(42), "per-hop deadlines stack");

        let (chained_now, chained_fires) = drive(true);
        assert_eq!(chained_fires, 1, "one detection exhausts the chain");
        assert_eq!(
            chained_now,
            SimTime::from_secs(4),
            "the whole chain is charged the outer budget exactly once"
        );
    }

    #[test]
    fn chain_deadline_clamps_and_expires() {
        let t0 = SimTime::from_secs(10);
        let chain = ChainDeadline::new(t0, Duration::from_secs(2));
        assert_eq!(chain.deadline(), SimTime::from_secs(12));
        assert_eq!(chain.remaining(t0), Duration::from_secs(2));
        assert_eq!(chain.clamp(t0, Duration::from_secs(5)), Duration::from_secs(2));
        assert_eq!(chain.clamp(t0, Duration::from_secs(1)), Duration::from_secs(1));
        assert!(!chain.expired(t0));
        assert!(chain.expired(SimTime::from_secs(12)));
        assert_eq!(chain.remaining(SimTime::from_secs(13)), Duration::ZERO);
    }

    #[test]
    fn serve_without_chain_is_byte_identical_to_serve_within_none() {
        let run = |via_within: bool| {
            let (mut env, mut app) = setup();
            app.inject("apache-edt-02", &mut env).unwrap();
            let req = app.trigger_request("apache-edt-02").unwrap();
            let mut strategy = RestartRetry::new(3);
            let config = hardened();
            let mut sup = RequestSupervisor::begin(&mut app, &mut env, &mut strategy, &config);
            let outcome = if via_within {
                sup.serve_within(&mut app, &mut env, &req, &mut strategy, &config, &mut None, None)
            } else {
                sup.serve(&mut app, &mut env, &req, &mut strategy, &config, &mut None)
            };
            (outcome, env.now(), sup.watchdog_fires(), sup.failures())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn supervisor_events_are_recorded_through_metrics() {
        let mut env = Environment::builder().seed(7).proc_slots(6).metrics(true).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edn-02").unwrap()];
        let mut config = hardened();
        config.scrub_every = 1;
        let out = run_workload_supervised(
            &mut app,
            &mut env,
            &workload,
            &mut RestartRetry::new(3),
            &config,
            None,
        );
        assert!(out.run.survived);
        let reg = env.metrics.take().unwrap();
        assert_eq!(reg.counter("supervisor.scrubs", "restart"), u64::from(out.scrubs));
        assert!(reg.histogram("supervisor.backoff", "restart").is_some());
    }
}
