//! The supervisor: drives a workload against an application under a
//! recovery strategy and reports whether the work survived.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{Application, Request};
use faultstudy_env::Environment;
use faultstudy_obs::Span;
use serde::{Deserialize, Serialize};

/// Outcome of supervising one workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Requests that were eventually served.
    pub completed: usize,
    /// Requests in the workload.
    pub total: usize,
    /// Fault manifestations observed (first failures and failed retries).
    pub failures: u32,
    /// Recovery actions the strategy performed.
    pub recoveries: u32,
    /// Whether the whole workload was eventually served. This is the
    /// paper's survival criterion: every requested task must execute — "we
    /// do not assume a user will generously avoid the fault trigger" (§7).
    pub survived: bool,
    /// Reason of the final failure when not survived; always `None` on a
    /// surviving run, even if transient failures were recovered along the
    /// way.
    pub last_failure: Option<String>,
}

/// Runs `workload` against `app` under `strategy`.
///
/// Each request is attempted until it succeeds or the strategy gives up.
/// Retries clear the request's one-shot [`Request::timing_event`]: the
/// event came from the environment's timing, and recovery replays the
/// request, not the environment.
///
/// # Example
///
/// ```
/// use faultstudy_apps::{Application, MiniWeb, Request};
/// use faultstudy_env::Environment;
/// use faultstudy_recovery::{run_workload, RestartRetry};
///
/// let mut env = Environment::builder().seed(1).build();
/// let mut app = MiniWeb::new(&mut env);
/// let workload = vec![Request::new("GET /a"), Request::new("GET /b")];
/// let mut strategy = RestartRetry::new(3);
/// let run = run_workload(&mut app, &mut env, &workload, &mut strategy);
/// assert!(run.survived);
/// assert_eq!(run.completed, 2);
/// ```
pub fn run_workload(
    app: &mut dyn Application,
    env: &mut Environment,
    workload: &[Request],
    strategy: &mut dyn RecoveryStrategy,
) -> WorkloadRun {
    strategy.on_start(app, env);
    let mut run = WorkloadRun {
        completed: 0,
        total: workload.len(),
        failures: 0,
        recoveries: 0,
        survived: true,
        last_failure: None,
    };
    'workload: for original in workload {
        let mut req = original.clone();
        let mut attempt = 0u32;
        // Opened (in simulated time) at a request's first failure; closed
        // when the request finally succeeds. The span covers every retry,
        // so its length is the user-visible time-to-recovery.
        let mut ttr: Option<Span> = None;
        loop {
            match app.handle(&req, env) {
                Ok(_) => {
                    strategy.on_success(&req, app, env);
                    run.completed += 1;
                    if let Some(span) = ttr {
                        let now = env.now();
                        env.metrics.record_span("recovery.ttr", strategy.name(), span, now);
                        env.metrics.record("recovery.retries", strategy.name(), u64::from(attempt));
                    }
                    break;
                }
                Err(failure) => {
                    run.failures += 1;
                    run.last_failure = Some(failure.to_string());
                    attempt += 1;
                    ttr.get_or_insert_with(|| Span::begin(env.now()));
                    if !strategy.on_failure(app, env, attempt) {
                        run.survived = false;
                        break 'workload;
                    }
                    run.recoveries += 1;
                    // The retry replays the request without its one-shot
                    // environmental timing event.
                    req.timing_event = false;
                }
            }
        }
    }
    if run.survived {
        // Recovered transients are not "the final failure": a surviving
        // run's contract is that every request was eventually served.
        run.last_failure = None;
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoRecovery, ProgressiveRetry, RestartRetry};
    use faultstudy_apps::MiniWeb;

    fn setup() -> (Environment, MiniWeb) {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let app = MiniWeb::new(&mut env);
        (env, app)
    }

    #[test]
    fn healthy_workload_completes_without_recoveries() {
        let (mut env, mut app) = setup();
        let workload: Vec<Request> =
            (0..5).map(|i| Request::new(format!("GET /page{i}"))).collect();
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(2));
        assert!(run.survived);
        assert_eq!(run.completed, 5);
        assert_eq!(run.failures, 0);
        assert_eq!(run.recoveries, 0);
        assert!(run.last_failure.is_none());
    }

    #[test]
    fn deterministic_fault_defeats_generic_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(!run.survived);
        assert_eq!(run.failures, 4, "initial failure plus three failed retries");
        assert_eq!(run.recoveries, 3);
        assert!(run.last_failure.unwrap().contains("hash"));
    }

    #[test]
    fn transient_fault_survives_generic_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(run.survived);
        assert_eq!(run.recoveries, 1, "one restart cleared the hung children");
        assert!(run.last_failure.is_none(), "surviving runs report no final failure");
    }

    #[test]
    fn no_recovery_fails_on_first_fault() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut NoRecovery);
        assert!(!run.survived);
        assert_eq!(run.failures, 1);
        assert_eq!(run.completed, 0);
    }

    #[test]
    fn remaining_workload_continues_after_recovery() {
        let (mut env, mut app) = setup();
        app.inject("apache-edt-07", &mut env).unwrap();
        let mut workload = vec![
            Request::new("GET /before"),
            app.trigger_request("apache-edt-07").unwrap(),
            Request::new("GET /after"),
        ];
        workload[0].timing_event = false;
        let run = run_workload(&mut app, &mut env, &workload, &mut ProgressiveRetry::new(5));
        assert!(run.survived);
        assert_eq!(run.completed, 3);
        assert!(run.last_failure.is_none(), "surviving runs report no final failure");
    }

    #[test]
    fn instrumented_run_records_ttr_and_retries() {
        let mut env = Environment::builder().seed(7).proc_slots(6).metrics(true).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edt-02", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-edt-02").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut RestartRetry::new(3));
        assert!(run.survived);
        let reg = env.metrics.take().unwrap();
        let ttr = reg.histogram("recovery.ttr", "restart").expect("ttr recorded");
        assert_eq!(ttr.count(), 1);
        assert!(ttr.max().unwrap() > 0, "recovery consumed simulated time");
        let retries = reg.histogram("recovery.retries", "restart").unwrap();
        assert_eq!(retries.max(), Some(1));
    }

    #[test]
    fn uninstrumented_run_is_identical_to_instrumented() {
        let run_with = |metrics: bool| {
            let mut env = Environment::builder().seed(7).proc_slots(6).metrics(metrics).build();
            let mut app = MiniWeb::new(&mut env);
            app.inject("apache-edt-07", &mut env).unwrap();
            let workload = vec![
                Request::new("GET /a"),
                app.trigger_request("apache-edt-07").unwrap(),
                Request::new("GET /b"),
            ];
            (run_workload(&mut app, &mut env, &workload, &mut ProgressiveRetry::new(5)), env.now())
        };
        assert_eq!(run_with(false), run_with(true), "recording must not perturb the simulation");
    }

    #[test]
    fn empty_workload_trivially_survives() {
        let (mut env, mut app) = setup();
        let run = run_workload(&mut app, &mut env, &[], &mut NoRecovery);
        assert!(run.survived);
        assert_eq!(run.total, 0);
    }
}
