//! Recovery strategies: application-generic techniques (restart-retry,
//! process pairs, rollback-recovery, progressive retry, rejuvenation) and
//! the application-specific comparator.
//!
//! §2 of the paper defines the contract this crate implements: a *truly
//! generic* recovery mechanism "must preserve all application state (e.g.
//! by checkpointing or logging), because there is no application-specific
//! code to reconstruct missing state. Hence only a change external to the
//! application can allow the application to succeed on retry." Every
//! generic strategy here therefore restores checkpoints byte-for-byte and
//! touches only the environment ([`faultstudy_env::Environment::on_generic_recovery`]);
//! the [`AppSpecific`] comparator is the one allowed to call
//! [`Application::cold_start`](faultstudy_apps::Application::cold_start).
//!
//! # Modules
//!
//! - [`strategy`] — the [`RecoveryStrategy`] trait and [`NoRecovery`].
//! - [`restart`] — generic restart + retry from the last checkpoint.
//! - [`pair`] — process pairs \[Gray86\]: per-request state mirroring with
//!   fast failover.
//! - [`rollback`] — checkpoint every N requests + message-log replay
//!   [Elnozahy99, Huang93].
//! - [`progressive`] — progressive retry with environment perturbation
//!   \[Wang93\].
//! - [`rejuvenation`] — proactive software rejuvenation \[Huang95\].
//! - [`app_specific`] — the application-specific comparator.
//! - [`supervisor`] — drives a workload against an application under a
//!   strategy and reports survival; the hardened variant adds watchdog
//!   deadlines, bounded backoff, a circuit breaker, and policy-gated
//!   environment scrubbing.
//! - [`backoff`] — deterministic capped exponential backoff with jitter.
//! - [`breaker`] — the per-strategy circuit breaker.
//! - [`tree`] — microreboot: crash-only component recovery over a
//!   per-component restart tree with breaker-driven escalation.
//! - [`oblivious`] — failure-oblivious continuation: discard the failing
//!   request ([`Oblivious`]) or synthesize a deterministic default answer
//!   ([`ManufacturedValue`]) instead of abandoning the stream.
//! - [`scrub`] — [`StateScrub`]: drop volatile component state in place,
//!   the application-state generalization of environment scrubbing.
//! - [`healer`] — [`ProfileHealer`]: a runtime-profile-guided meta-strategy
//!   that picks retry/scrub/discard per attempt from observed failure
//!   signatures.
//! - [`thread_pair`] — a real-thread process-pair demonstration on
//!   crossbeam channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_specific;
pub mod backoff;
pub mod breaker;
pub mod healer;
pub mod oblivious;
pub mod pair;
pub mod progressive;
pub mod rejuvenation;
pub mod restart;
pub mod rollback;
pub mod scrub;
pub mod strategy;
pub mod supervisor;
pub mod thread_pair;
pub mod tree;

pub use app_specific::AppSpecific;
pub use backoff::BackoffPolicy;
pub use breaker::CircuitBreaker;
pub use healer::{FailureProfile, ProfileHealer};
pub use oblivious::{ManufacturedValue, Oblivious};
pub use pair::ProcessPair;
pub use progressive::ProgressiveRetry;
pub use rejuvenation::Rejuvenation;
pub use restart::RestartRetry;
pub use rollback::RollbackRecovery;
pub use scrub::{scrub_volatile_state, StateScrub};
pub use strategy::{NoRecovery, RecoveryStrategy};
pub use supervisor::{
    run_workload, run_workload_supervised, ChainDeadline, EnvHook, RequestSupervisor, ServeOutcome,
    SupervisedRun, SupervisorConfig, WorkloadRun,
};
pub use tree::{MicroReboot, RebootScope, RestartTree};
