//! Process pairs \[Gray86\]: per-request state mirroring with fast failover.
//!
//! The primary ships its state to the backup after every served request;
//! when the primary fails, the backup takes over from the mirrored state
//! and retries the operation "on the same code (possibly on a different
//! computer)" (§2). In a *pure* application-generic pair the backup's
//! state is byte-identical to the primary's at the last request boundary —
//! the paper's §7 analysis of Tandem explains that much of the field
//! success of real process pairs came from the backup *not* starting from
//! the same state, which a purely generic mechanism cannot rely on.
//!
//! Compared with [`RestartRetry`](crate::RestartRetry), failover is an
//! order of magnitude faster than a full restart, which matters for
//! conditions that heal with time: a quick failover gives DNS less time to
//! recover. The harness's recovery matrix makes this visible.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;
use faultstudy_sim::time::Duration;

/// A primary/backup process pair.
#[derive(Debug)]
pub struct ProcessPair {
    retries: u32,
    /// The checkpoint most recently shipped to the backup.
    backup: Option<AppState>,
    /// Failover latency (much shorter than a full restart).
    failover_takes: Duration,
    failovers: u32,
}

impl ProcessPair {
    /// A pair that fails over up to `retries` times, 100 ms per failover.
    pub fn new(retries: u32) -> ProcessPair {
        ProcessPair {
            retries,
            backup: None,
            failover_takes: Duration::from_millis(100),
            failovers: 0,
        }
    }

    /// Overrides the failover latency.
    pub fn with_failover_latency(mut self, d: Duration) -> ProcessPair {
        self.failover_takes = d;
        self
    }

    /// Failovers performed so far.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }
}

impl RecoveryStrategy for ProcessPair {
    fn name(&self) -> &'static str {
        "process-pair"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.backup = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        // Ship the state delta to the backup at the request boundary.
        self.backup = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        self.failovers += 1;
        // The failing primary's processes are cleaned up...
        env.procs.kill_all_of(app.owner());
        // ...and the backup resumes from the mirrored state after a short
        // takeover, not a full restart.
        env.advance(self.failover_takes);
        if let Some(backup) = &self.backup {
            app.restore(backup);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::MiniWeb;
    use faultstudy_sim::time::SimTime;

    #[test]
    fn failover_is_faster_than_restart() {
        let mut env = Environment::builder().seed(2).build();
        let mut app = MiniWeb::new(&mut env);
        let mut pair = ProcessPair::new(3);
        pair.on_start(&mut app, &mut env);
        assert!(pair.on_failure(&mut app, &mut env, 1));
        assert_eq!(env.now(), SimTime::from_millis(100));
        assert!(env.now() < SimTime::ZERO + env.recovery_takes());
        assert_eq!(pair.failovers(), 1);
    }

    #[test]
    fn backup_state_is_the_last_request_boundary() {
        let mut env = Environment::builder().seed(2).build();
        let mut app = MiniWeb::new(&mut env);
        let mut pair = ProcessPair::new(1);
        pair.on_start(&mut app, &mut env);
        let req = Request::new("GET /x");
        app.handle(&req, &mut env).unwrap();
        pair.on_success(&req, &mut app, &mut env);
        let mirrored = app.snapshot();
        app.handle(&Request::new("GET /y"), &mut env).unwrap();
        assert!(pair.on_failure(&mut app, &mut env, 1));
        assert_eq!(app.snapshot(), mirrored);
    }

    #[test]
    fn budget_limits_failovers() {
        let mut env = Environment::builder().seed(2).build();
        let mut app = MiniWeb::new(&mut env);
        let mut pair = ProcessPair::new(1);
        assert!(pair.on_failure(&mut app, &mut env, 1));
        assert!(!pair.on_failure(&mut app, &mut env, 2));
    }

    #[test]
    fn custom_failover_latency() {
        let mut env = Environment::builder().seed(2).build();
        let mut app = MiniWeb::new(&mut env);
        let mut pair = ProcessPair::new(1).with_failover_latency(Duration::from_millis(5));
        pair.on_failure(&mut app, &mut env, 1);
        assert_eq!(env.now(), SimTime::from_millis(5));
    }
}
