//! The application-specific recovery comparator.
//!
//! §2's other category: "a non-fault-tolerant design is made fault-tolerant
//! by adding code that is specific to the application … the programmer …
//! reconstructs part of the program state during recovery." On failure this
//! strategy performs the environmental recovery and then invokes
//! [`Application::cold_start`]: the application's own re-initialization,
//! which releases the resources *it* leaked, rebinds to the current
//! environment, and rebuilds session state — everything a byte-for-byte
//! checkpoint restore is forbidden to do.
//!
//! The paper's conclusion predicts this comparator out-recovers every
//! generic strategy on environment-dependent-nontransient faults whose
//! condition is of the application's own making (its leaks, its stale
//! session bindings), while still failing on deterministic faults and on
//! external conditions (a disk another program filled, a missing DNS
//! record). The recovery-matrix experiment measures exactly that.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::Application;
use faultstudy_env::Environment;

/// Application-specific cold-start recovery.
#[derive(Debug)]
pub struct AppSpecific {
    retries: u32,
    cold_starts: u32,
}

impl AppSpecific {
    /// Retries each failed request up to `retries` times after cold starts.
    pub fn new(retries: u32) -> AppSpecific {
        AppSpecific { retries, cold_starts: 0 }
    }

    /// Cold starts performed so far.
    pub fn cold_starts(&self) -> u32 {
        self.cold_starts
    }
}

impl RecoveryStrategy for AppSpecific {
    fn name(&self) -> &'static str {
        "app-specific"
    }

    fn is_generic(&self) -> bool {
        false
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        app.cold_start(env);
        self.cold_starts += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::{MiniDe, MiniWeb, Request};

    #[test]
    fn cold_start_recovers_self_inflicted_fd_exhaustion() {
        let mut env = Environment::builder().seed(6).fd_limit(4).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-02", &mut env).unwrap();
        let req = Request::new("GET /file");
        assert!(app.handle(&req, &mut env).is_err());
        let mut s = AppSpecific::new(1);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(app.handle(&req, &mut env).is_ok(), "cold start released own fds");
        assert_eq!(s.cold_starts(), 1);
    }

    #[test]
    fn cold_start_recovers_hostname_rebinding() {
        let mut env = Environment::builder().seed(6).hostname("d1").build();
        let mut app = MiniDe::new(&mut env);
        app.inject("gnome-edn-01", &mut env).unwrap();
        let req = Request::new("OPEN-DISPLAY");
        assert!(app.handle(&req, &mut env).is_err());
        let mut s = AppSpecific::new(1);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(app.handle(&req, &mut env).is_ok(), "session rebound to the new name");
    }

    #[test]
    fn cold_start_cannot_fix_deterministic_faults() {
        let mut env = Environment::builder().seed(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-03", &mut env).unwrap();
        let req = Request::new("GET /nonexistent");
        assert!(app.handle(&req, &mut env).is_err());
        let mut s = AppSpecific::new(2);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(app.handle(&req, &mut env).is_err(), "the defect is in the code");
    }

    #[test]
    fn cold_start_cannot_fix_external_conditions() {
        let mut env = Environment::builder().seed(6).fs_capacity(4096).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-edn-05", &mut env).unwrap();
        let req = Request::new("GET /logged");
        assert!(app.handle(&req, &mut env).is_err());
        let mut s = AppSpecific::new(2);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(app.handle(&req, &mut env).is_err(), "the disk is full with ballast");
    }

    #[test]
    fn budget_is_enforced() {
        let mut env = Environment::builder().seed(6).build();
        let mut app = MiniWeb::new(&mut env);
        let mut s = AppSpecific::new(1);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(!s.on_failure(&mut app, &mut env, 2));
    }
}
