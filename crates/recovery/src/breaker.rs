//! A per-strategy circuit breaker.
//!
//! A generic recovery with a retry budget still burns the whole budget on
//! every deterministic fault. The circuit breaker bounds that damage at
//! the supervisor level: after `threshold` *consecutive* recovered
//! failures it trips open, and the supervisor degrades gracefully — the
//! last checkpoint stands, remaining work is shed — instead of retrying
//! forever. Any success closes the breaker again. The pattern is the
//! standard antidote to retry storms; here it doubles as an honest way to
//! report "this strategy is not making progress" as a first-class,
//! countable event rather than a timeout.

use serde::{Deserialize, Serialize};

/// Counts consecutive failures and trips at a threshold.
///
/// A threshold of zero disables the breaker entirely: it never trips.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::CircuitBreaker;
///
/// let mut b = CircuitBreaker::new(2);
/// assert!(!b.record_failure());
/// assert!(b.record_failure(), "second consecutive failure trips");
/// assert!(b.is_open());
/// b.record_success();
/// assert!(!b.is_open());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    open: bool,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (zero = disabled).
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker { threshold, consecutive: 0, open: false }
    }

    /// Records one failure; returns `true` exactly when this failure trips
    /// the breaker open.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive = self.consecutive.saturating_add(1);
        if self.threshold > 0 && !self.open && self.consecutive >= self.threshold {
            self.open = true;
            return true;
        }
        false
    }

    /// Records a success, closing the breaker and resetting the streak.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.open = false;
    }

    /// Whether the breaker is currently open.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_at_threshold() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.is_open());
        assert!(b.record_failure());
        assert!(b.is_open());
        // Already open: further failures are not new trips.
        assert!(!b.record_failure());
        assert_eq!(b.consecutive_failures(), 4);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure(), "streak restarted from zero");
        assert!(b.record_failure());
        b.record_success();
        assert!(!b.is_open(), "success closes an open breaker");
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::new(0);
        for _ in 0..1000 {
            assert!(!b.record_failure());
        }
        assert!(!b.is_open());
    }
}
