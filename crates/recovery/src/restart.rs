//! Generic restart-and-retry from the last checkpoint.
//!
//! The simplest application-generic technique: checkpoint after every
//! served request; on failure, let the recovery layer kill the
//! application's processes, restore the last checkpoint byte-for-byte, and
//! retry the failed request. Each recovery consumes
//! [`Environment::recovery_takes`] of simulated time, which is what gives
//! naturally-healing conditions their chance.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;

/// Restart-and-retry with a bounded retry budget.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::{RecoveryStrategy, RestartRetry};
///
/// let s = RestartRetry::new(3);
/// assert_eq!(s.name(), "restart");
/// assert!(s.is_generic());
/// ```
#[derive(Debug)]
pub struct RestartRetry {
    retries: u32,
    checkpoint: Option<AppState>,
}

impl RestartRetry {
    /// A strategy that retries each failed request up to `retries` times.
    pub fn new(retries: u32) -> RestartRetry {
        RestartRetry { retries, checkpoint: None }
    }

    /// The retry budget.
    pub fn retries(&self) -> u32 {
        self.retries
    }
}

impl RecoveryStrategy for RestartRetry {
    fn name(&self) -> &'static str {
        "restart"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::{MiniWeb, Response};

    fn setup() -> (Environment, MiniWeb) {
        let mut env = Environment::builder().seed(1).proc_slots(4).build();
        let app = MiniWeb::new(&mut env);
        (env, app)
    }

    #[test]
    fn restores_last_checkpoint_on_failure() {
        let (mut env, mut app) = setup();
        let mut s = RestartRetry::new(2);
        s.on_start(&mut app, &mut env);
        let req = Request::new("GET /a");
        let resp = app.handle(&req, &mut env).unwrap();
        assert_eq!(resp, Response::Ok("200 OK /a".into()));
        s.on_success(&req, &mut app, &mut env);
        let at_one = app.snapshot();
        app.handle(&Request::new("GET /b"), &mut env).unwrap();
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert_eq!(app.snapshot(), at_one, "state rolled back to the checkpoint");
    }

    #[test]
    fn budget_exhaustion_gives_up() {
        let (mut env, mut app) = setup();
        let mut s = RestartRetry::new(2);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert!(s.on_failure(&mut app, &mut env, 2));
        assert!(!s.on_failure(&mut app, &mut env, 3));
    }

    #[test]
    fn recovery_kills_app_processes_and_advances_time() {
        let (mut env, mut app) = setup();
        let pid = env.procs.spawn(app.owner()).unwrap();
        env.procs.hang(pid).unwrap();
        let before = env.now();
        let mut s = RestartRetry::new(1);
        s.on_start(&mut app, &mut env);
        assert!(s.on_failure(&mut app, &mut env, 1));
        assert_eq!(env.procs.count_of(app.owner()), 0);
        assert!(env.now() > before);
    }
}
