//! Bounded exponential backoff with deterministic jitter.
//!
//! Retrying immediately after a recovery is exactly wrong for the paper's
//! transient faults: the environment needs *time* to change ("only a change
//! external to the application can allow the application to succeed on
//! retry", §2). The backoff policy spends that time deliberately —
//! exponentially growing, jittered so that co-failing replicas do not
//! retry in lockstep, capped so a long outage cannot push the delay past a
//! configured bound, and fully deterministic: the jitter is a pure function
//! of `(seed, attempt)` via [`split_seed`], so the same policy replays the
//! same schedule on any thread count.

use faultstudy_sim::rng::{split_seed, DetRng, Xoshiro256StarStar};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};

/// A deterministic, capped exponential backoff schedule.
///
/// Attempt `a` (1-based) waits `min(cap, base·2^(a-1) + jitter)` where
/// `jitter` is drawn uniformly from `[0, base·2^(a-1) / 2]` by a generator
/// seeded with `split_seed(seed, a)`. The schedule is monotone
/// non-decreasing: the jittered delay of attempt `a` is at most
/// `1.5 · base·2^(a-1)`, which never exceeds the un-jittered floor
/// `base·2^a` of attempt `a+1`, and capping preserves order.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::BackoffPolicy;
/// use faultstudy_sim::time::Duration;
///
/// let p = BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2), 7);
/// assert!(p.delay(1) >= Duration::from_millis(100));
/// assert!(p.delay(2) >= p.delay(1));
/// assert!(p.delay(30) <= Duration::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl BackoffPolicy {
    /// A policy starting at `base`, doubling per attempt, clamped to `cap`,
    /// with jitter drawn from `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> BackoffPolicy {
        BackoffPolicy { base, cap, seed }
    }

    /// The no-delay policy: every attempt retries immediately.
    pub fn none() -> BackoffPolicy {
        BackoffPolicy { base: Duration::ZERO, cap: Duration::ZERO, seed: 0 }
    }

    /// The delay before retry `attempt` (1-based). Attempt 0 and the
    /// [`BackoffPolicy::none`] policy wait nothing.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base == Duration::ZERO {
            return Duration::ZERO;
        }
        let exp = (attempt - 1).min(63);
        let raw = self.base.saturating_mul(1u64 << exp).as_nanos();
        let mut rng = Xoshiro256StarStar::seed_from(split_seed(self.seed, u64::from(attempt)));
        let jitter = rng.below(raw / 2 + 1);
        Duration::from_nanos(raw.saturating_add(jitter).min(self.cap.as_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2), 42)
    }

    #[test]
    fn schedule_is_monotone_and_capped() {
        let p = policy();
        let mut prev = Duration::ZERO;
        for attempt in 1..=64 {
            let d = p.delay(attempt);
            assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            assert!(d <= Duration::from_secs(2), "attempt {attempt} over cap");
            prev = d;
        }
        assert_eq!(p.delay(64), Duration::from_secs(2), "deep attempts pin to the cap");
    }

    #[test]
    fn jitter_stays_within_half_the_raw_delay() {
        let p = policy();
        for attempt in 1..=4u32 {
            let raw = Duration::from_millis(100).saturating_mul(1 << (attempt - 1));
            let d = p.delay(attempt);
            assert!(d >= raw);
            assert!(d.as_nanos() <= raw.as_nanos() + raw.as_nanos() / 2);
        }
    }

    #[test]
    fn equal_seeds_give_equal_schedules() {
        let a = policy();
        let b = policy();
        for attempt in 1..=20 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn distinct_seeds_jitter_differently_somewhere() {
        let a = BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(60), 1);
        let b = BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(60), 2);
        assert!((1..=10).any(|n| a.delay(n) != b.delay(n)));
    }

    #[test]
    fn none_policy_never_waits() {
        let p = BackoffPolicy::none();
        assert_eq!(p.delay(1), Duration::ZERO);
        assert_eq!(p.delay(1000), Duration::ZERO);
        assert_eq!(policy().delay(0), Duration::ZERO);
    }

    #[test]
    fn delay_is_a_pure_function_of_attempt() {
        let p = policy();
        // Querying out of order or repeatedly changes nothing: no hidden
        // generator state survives between calls.
        let d5 = p.delay(5);
        p.delay(9);
        p.delay(1);
        assert_eq!(p.delay(5), d5);
    }
}
