//! Property tests for the recovery strategies.

use faultstudy_apps::{spawn_app, Request};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::Environment;
use faultstudy_recovery::thread_pair::{run_pair, Op};
use faultstudy_recovery::{
    run_workload, BackoffPolicy, FailureProfile, ManufacturedValue, NoRecovery, Oblivious,
    ProcessPair, ProfileHealer, ProgressiveRetry, RecoveryStrategy, RestartRetry, RollbackRecovery,
    StateScrub,
};
use faultstudy_sim::time::Duration;
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn big_env(seed: u64) -> Environment {
    Environment::builder().seed(seed).fd_limit(64).proc_slots(32).fs_capacity(1 << 22).build()
}

fn strategies(retries: u32) -> Vec<Box<dyn RecoveryStrategy>> {
    vec![
        Box::new(NoRecovery),
        Box::new(RestartRetry::new(retries)),
        Box::new(ProcessPair::new(retries)),
        Box::new(RollbackRecovery::new(2, retries)),
        Box::new(ProgressiveRetry::new(retries)),
    ]
}

proptest! {
    /// On a healthy application, every strategy is a no-op: the workload
    /// completes with zero failures and zero recoveries.
    #[test]
    fn strategies_are_invisible_without_faults(
        kind in app_strategy(),
        n in 1usize..30,
        seed in any::<u64>(),
        retries in 1u32..5
    ) {
        for mut strategy in strategies(retries) {
            let mut env = big_env(seed);
            let mut app = spawn_app(kind, &mut env);
            let workload: Vec<Request> = (0..n).map(|_| app.benign_request()).collect();
            let run = run_workload(app.as_mut(), &mut env, &workload, strategy.as_mut());
            prop_assert!(run.survived, "{}", strategy.name());
            prop_assert_eq!(run.completed, n);
            prop_assert_eq!(run.failures, 0, "{}", strategy.name());
            prop_assert_eq!(run.recoveries, 0, "{}", strategy.name());
        }
    }

    /// Recoveries never exceed failures, and completed never exceeds the
    /// workload, for any fault and strategy.
    #[test]
    fn run_accounting_is_consistent(
        fault_idx in 0usize..139,
        retries in 0u32..4,
        seed in any::<u64>()
    ) {
        let corpus = faultstudy_corpus::full_corpus();
        let fault = &corpus[fault_idx];
        for mut strategy in strategies(retries) {
            let mut env = big_env(seed);
            let mut app = spawn_app(fault.app(), &mut env);
            app.inject(fault.slug(), &mut env).expect("injectable");
            let workload = vec![
                app.benign_request(),
                app.trigger_request(fault.slug()).expect("trigger"),
            ];
            let run = run_workload(app.as_mut(), &mut env, &workload, strategy.as_mut());
            prop_assert!(run.recoveries <= run.failures);
            prop_assert!(run.completed <= run.total);
            prop_assert_eq!(run.survived, run.completed == run.total);
            if !run.survived {
                prop_assert!(run.last_failure.is_some());
            }
        }
    }

    /// An environment-independent fault is never survived, whatever the
    /// retry budget — the taxonomy's core guarantee.
    #[test]
    fn deterministic_faults_resist_any_budget(
        retries in 0u32..8,
        seed in any::<u64>()
    ) {
        let fault = faultstudy_corpus::find("apache-ei-26").expect("exists");
        for mut strategy in strategies(retries) {
            let mut env = big_env(seed);
            let mut app = spawn_app(fault.app(), &mut env);
            app.inject(fault.slug(), &mut env).expect("injectable");
            let workload = vec![app.trigger_request(fault.slug()).expect("trigger")];
            let run = run_workload(app.as_mut(), &mut env, &workload, strategy.as_mut());
            prop_assert!(!run.survived, "{} with {retries} retries", strategy.name());
        }
    }

    /// With their distinguishing feature disabled, every oblivious-family
    /// strategy degenerates byte-for-byte into plain restart-retry: same
    /// run accounting AND same simulated clock, over the whole fault
    /// corpus. The features are strictly additive.
    #[test]
    fn disabled_oblivious_family_degenerates_into_restart_retry(
        fault_idx in 0usize..139,
        retries in 0u32..4,
        seed in any::<u64>()
    ) {
        let corpus = faultstudy_corpus::full_corpus();
        let fault = &corpus[fault_idx];
        let scenario = |strategy: &mut dyn RecoveryStrategy| {
            let mut env = big_env(seed);
            let mut app = spawn_app(fault.app(), &mut env);
            app.inject(fault.slug(), &mut env).expect("injectable");
            let workload = vec![
                app.benign_request(),
                app.trigger_request(fault.slug()).expect("trigger"),
                app.benign_request(),
            ];
            let run = run_workload(app.as_mut(), &mut env, &workload, strategy);
            (run, env.now())
        };
        let baseline = scenario(&mut RestartRetry::new(retries));
        let featureless: Vec<Box<dyn RecoveryStrategy>> = vec![
            Box::new(Oblivious::new(retries)),
            Box::new(ManufacturedValue::new(retries)),
            Box::new(StateScrub::new(retries)),
            Box::new(ProfileHealer::new(retries, FailureProfile::empty())),
        ];
        for mut strategy in featureless {
            let got = scenario(strategy.as_mut());
            prop_assert_eq!(&got, &baseline, "{} diverged from restart-retry", strategy.name());
        }
    }

    /// The thread-based process pair computes the same sum as a sequential
    /// fold for arbitrary fault-free op lists, and survives exactly one
    /// transient fault anywhere in the list.
    #[test]
    fn thread_pair_matches_sequential_sum(
        values in prop::collection::vec(0u64..1000, 0..20),
        fault_at in prop::option::of(0usize..20)
    ) {
        let mut ops: Vec<Op> = values.iter().map(|v| Op::Add(*v)).collect();
        let expected: u64 = values.iter().sum();
        let mut expect_failover = false;
        if let Some(pos) = fault_at {
            if pos <= ops.len() {
                ops.insert(pos, Op::TransientFault(7));
                expect_failover = true;
            }
        }
        let outcome = run_pair(&ops);
        let expected_total = expected + if expect_failover { 7 } else { 0 };
        prop_assert_eq!(outcome.result, Some(expected_total));
        prop_assert_eq!(outcome.failed_over, expect_failover);
    }

    /// A poison op defeats the pair no matter where it sits.
    #[test]
    fn thread_pair_never_survives_poison(
        values in prop::collection::vec(0u64..100, 0..10),
        pos in 0usize..11
    ) {
        let mut ops: Vec<Op> = values.iter().map(|v| Op::Add(*v)).collect();
        let pos = pos.min(ops.len());
        ops.insert(pos, Op::PoisonFault);
        let outcome = run_pair(&ops);
        prop_assert_eq!(outcome.result, None);
    }

    /// The backoff schedule is monotone non-decreasing in the attempt
    /// number and never exceeds its cap, for any base/cap/seed.
    #[test]
    fn backoff_is_monotone_and_bounded_by_cap(
        base_ms in 0u64..5_000,
        cap_ms in 0u64..600_000,
        seed in any::<u64>()
    ) {
        let p = BackoffPolicy::new(
            Duration::from_millis(base_ms),
            Duration::from_millis(cap_ms),
            seed,
        );
        let mut prev = Duration::ZERO;
        for attempt in 1..=80u32 {
            let d = p.delay(attempt);
            prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            prop_assert!(d <= Duration::from_millis(cap_ms), "attempt {attempt} over cap");
            prev = d;
        }
    }

    /// Equal seeds give byte-identical schedules; the delay is a pure
    /// function of `(policy, attempt)` with no hidden state, so the
    /// schedule cannot depend on which thread or in what order attempts
    /// are evaluated.
    #[test]
    fn backoff_is_deterministic_and_order_independent(
        base_ms in 1u64..5_000,
        cap_ms in 1u64..600_000,
        seed in any::<u64>(),
        order in prop::collection::vec(1u32..40, 1..20)
    ) {
        let make = || BackoffPolicy::new(
            Duration::from_millis(base_ms),
            Duration::from_millis(cap_ms),
            seed,
        );
        let (a, b) = (make(), make());
        let forward: Vec<Duration> = (1..=40).map(|n| a.delay(n)).collect();
        // Query b in an arbitrary (possibly repeating) order first.
        for &n in &order {
            b.delay(n);
        }
        for attempt in 1..=40u32 {
            prop_assert_eq!(b.delay(attempt), forward[attempt as usize - 1]);
        }
    }
}
