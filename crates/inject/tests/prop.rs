//! Property tests for the injection engine: plans are pure functions of
//! their seed and replays are byte-identical however time is stepped.

use faultstudy_env::Environment;
use faultstudy_inject::{standard_plans, InjectionKind, Injector};
use faultstudy_recovery::EnvHook;
use faultstudy_sim::time::Duration;
use proptest::prelude::*;

proptest! {
    /// Equal seeds give byte-identical plan suites; the generator holds no
    /// global state, so generation order cannot matter.
    #[test]
    fn plan_suites_are_pure_functions_of_the_seed(seed in any::<u64>()) {
        let a = standard_plans(seed);
        standard_plans(seed ^ 0xdead_beef); // interleaved unrelated generation
        let b = standard_plans(seed);
        prop_assert_eq!(a, b);
    }

    /// Every plan's schedule is strictly increasing and every event
    /// carries the class its plan advertises.
    #[test]
    fn schedules_are_ordered_and_classes_coherent(seed in any::<u64>()) {
        for plan in standard_plans(seed) {
            for pair in plan.events.windows(2) {
                prop_assert!(pair[0].at < pair[1].at, "{}: out of order", plan.name);
            }
            for ev in &plan.events {
                prop_assert_eq!(ev.kind.class(), plan.class, "{}", plan.name);
            }
        }
    }

    /// Replaying a plan is independent of how the clock is stepped: any
    /// partition of the same total time applies the same events and leaves
    /// the environment's resource tables in the same state.
    #[test]
    fn replay_is_step_size_independent(
        seed in any::<u64>(),
        plan_idx in 0usize..9,
        steps in prop::collection::vec(1u64..300, 1..12),
    ) {
        let plan = &standard_plans(seed)[plan_idx];
        let total: u64 = steps.iter().sum();

        let run = |chunks: &[u64]| {
            let mut env = Environment::builder().seed(1).fd_limit(16).fs_capacity(64 * 1024).build();
            let mut injector = Injector::new(plan, &mut env);
            for &ms in chunks {
                env.advance(Duration::from_millis(ms));
                injector.pre_attempt(&mut env);
            }
            (injector.applied(), env.fds.in_use(), env.fs.used(), env.fds.is_exhausted())
        };

        prop_assert_eq!(run(&steps), run(&[total]));
    }

    /// The per-event fd grab of a leak ramp never panics and never
    /// overshoots the table, whatever the table size.
    #[test]
    fn fd_ramp_saturates_cleanly(limit in 1u32..64, per_event in 0u32..40, reps in 1u32..6) {
        let mut env = Environment::builder().seed(2).fd_limit(limit).build();
        let owner = env.register_owner("ext");
        for _ in 0..reps {
            InjectionKind::FdLeakRamp { per_event }.apply(&mut env, owner);
        }
        prop_assert!(env.fds.in_use() <= limit);
        prop_assert_eq!(env.fds.in_use(), (per_event * reps).min(limit));
    }
}
