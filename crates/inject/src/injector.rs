//! The injector: replays an [`InjectionPlan`] against the environment as
//! simulated time reaches each event.

use crate::plan::{InjectionEvent, InjectionPlan};
use faultstudy_env::{Environment, OwnerId};
use faultstudy_recovery::EnvHook;

/// Applies a plan's events on schedule.
///
/// The injector registers itself as a resource owner in the environment
/// (it *is* an external program competing for resources) and implements
/// [`EnvHook`], so the hardened supervisor consults it before every
/// attempt. Events strictly in the past or due now are applied exactly
/// once, in schedule order; nothing is ever re-applied, so a scrub between
/// retries genuinely clears what an already-fired event created.
///
/// # Example
///
/// ```
/// use faultstudy_inject::{standard_plans, Injector};
/// use faultstudy_env::Environment;
/// use faultstudy_recovery::EnvHook;
/// use faultstudy_sim::time::Duration;
///
/// let plan = &standard_plans(7)[1]; // fd-exhaustion
/// let mut env = Environment::builder().seed(1).fd_limit(8).build();
/// let mut injector = Injector::new(plan, &mut env);
/// injector.pre_attempt(&mut env); // nothing due at t=0
/// assert!(!env.fds.is_exhausted());
/// env.advance(Duration::from_secs(1));
/// injector.pre_attempt(&mut env);
/// assert!(env.fds.is_exhausted());
/// ```
#[derive(Debug)]
pub struct Injector {
    owner: OwnerId,
    events: Vec<InjectionEvent>,
    cursor: usize,
}

impl Injector {
    /// Prepares to replay `plan`, registering the injector as an external
    /// resource owner in `env`.
    pub fn new(plan: &InjectionPlan, env: &mut Environment) -> Injector {
        let owner = env.register_owner("injector");
        Injector { owner, events: plan.events.clone(), cursor: 0 }
    }

    /// Events applied so far.
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Events still scheduled for the future.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The owner id under which the injector holds resources.
    pub fn owner(&self) -> OwnerId {
        self.owner
    }
}

impl EnvHook for Injector {
    fn pre_attempt(&mut self, env: &mut Environment) {
        let now = env.now();
        while let Some(event) = self.events.get(self.cursor) {
            if event.at > now {
                break;
            }
            event.kind.apply(env, self.owner);
            env.metrics.incr("inject.applied", event.kind.name(), 1);
            env.trace.record(
                now,
                "inject",
                format!("applied {} (scheduled {})", event.kind, event.at),
            );
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::standard_plans;
    use faultstudy_sim::time::Duration;

    fn env() -> Environment {
        Environment::builder().seed(3).fd_limit(16).fs_capacity(64 * 1024).build()
    }

    fn plan_named(name: &str) -> InjectionPlan {
        standard_plans(7).into_iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn events_apply_once_in_order_as_time_passes() {
        let plan = plan_named("fd-leak-ramp");
        let mut env = env();
        let mut injector = Injector::new(&plan, &mut env);
        assert_eq!(injector.pending(), 4);
        // Walk time forward in 100ms steps, polling like the supervisor.
        let mut in_use_prev = 0;
        for _ in 0..10 {
            env.advance(Duration::from_millis(100));
            injector.pre_attempt(&mut env);
            assert!(env.fds.in_use() >= in_use_prev, "ramp only grows");
            in_use_prev = env.fds.in_use();
        }
        assert_eq!(injector.applied(), 4);
        assert_eq!(injector.pending(), 0);
        assert!(env.fds.is_exhausted(), "4 events x 5 fds saturate the 16-slot table");
        // Idempotent once drained: more polls change nothing.
        injector.pre_attempt(&mut env);
        assert_eq!(injector.applied(), 4);
    }

    #[test]
    fn applied_events_are_not_reapplied_after_a_scrub() {
        let plan = plan_named("disk-full");
        let mut env = env();
        let mut injector = Injector::new(&plan, &mut env);
        env.advance(Duration::from_secs(1));
        injector.pre_attempt(&mut env);
        assert!(env.fs.is_full());
        env.scrub();
        injector.pre_attempt(&mut env);
        assert!(!env.fs.is_full(), "the fired event stays fired; the scrub sticks");
    }

    #[test]
    fn injection_replays_identically_for_equal_seeds() {
        let run = || {
            let plan = plan_named("fd-leak-ramp");
            let mut env = env();
            let mut injector = Injector::new(&plan, &mut env);
            for _ in 0..8 {
                env.advance(Duration::from_millis(70));
                injector.pre_attempt(&mut env);
            }
            (env.fds.in_use(), injector.applied(), env.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn instrumented_injection_counts_applied_events() {
        let plan = plan_named("fd-leak-ramp");
        let mut env = Environment::builder().seed(3).fd_limit(16).metrics(true).build();
        let mut injector = Injector::new(&plan, &mut env);
        env.advance(Duration::from_secs(1));
        injector.pre_attempt(&mut env);
        let reg = env.metrics.take().unwrap();
        assert_eq!(reg.counter("inject.applied", "fd-leak-ramp"), 4);
    }
}
