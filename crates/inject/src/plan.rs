//! Injection plans: what to perturb, when, and what the paper's taxonomy
//! says about survivability.
//!
//! A plan is data — a named list of `(simulated time, perturbation)` events
//! plus the companion application defect whose trigger turns the
//! perturbation into a high-impact failure. Plans never execute anything
//! themselves; the [`Injector`](crate::Injector) applies due events as the
//! supervisor drives simulated time forward. Everything is a pure function
//! of the generating seed, so a plan replays byte-identically wherever and
//! however often it runs.

use faultstudy_core::taxonomy::FaultClass;
use faultstudy_env::dns::DnsHealth;
use faultstudy_env::network::LinkQuality;
use faultstudy_env::{Environment, OwnerId};
use faultstudy_sim::rng::{split_seed, DetRng, Xoshiro256StarStar};
use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of environment perturbation.
///
/// Each variant carries everything its application needs, so applying an
/// event is a pure function of `(event, environment)` — there is no hidden
/// generator state to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionKind {
    /// Open `per_event` descriptors as an external program and never close
    /// them: one step of a leak ramp. The paper's "competition between
    /// MySQL and a web server for descriptors" spread over time.
    FdLeakRamp {
        /// Descriptors grabbed by this step.
        per_event: u32,
    },
    /// Exhaust the descriptor table outright.
    FdExhaustion,
    /// Fill the filesystem to capacity with external ballast — an ENOSPC
    /// window that stays open until somebody scrubs.
    DiskFull,
    /// DNS server starts erroring; self-heals after `heal_after`.
    DnsTimeout {
        /// Outage duration.
        heal_after: Duration,
    },
    /// DNS latency spikes past request timeouts; self-heals.
    DnsLatencySpike {
        /// Spike duration.
        heal_after: Duration,
    },
    /// Packet loss/reorder degrades the link to its slow profile;
    /// self-heals.
    PacketLossBurst {
        /// Burst duration.
        heal_after: Duration,
    },
    /// Drain the kernel entropy pool (it refills with time).
    EntropyStarvation,
    /// Perturb scheduler timing: force a new thread-interleave seed.
    SchedulerJitter {
        /// The interleave seed to force.
        seed: u64,
    },
}

impl InjectionKind {
    /// Stable short name (used as a metric label and in reports).
    pub fn name(self) -> &'static str {
        match self {
            InjectionKind::FdLeakRamp { .. } => "fd-leak-ramp",
            InjectionKind::FdExhaustion => "fd-exhaustion",
            InjectionKind::DiskFull => "disk-full",
            InjectionKind::DnsTimeout { .. } => "dns-timeout",
            InjectionKind::DnsLatencySpike { .. } => "dns-latency",
            InjectionKind::PacketLossBurst { .. } => "packet-loss",
            InjectionKind::EntropyStarvation => "entropy-starvation",
            InjectionKind::SchedulerJitter { .. } => "scheduler-jitter",
        }
    }

    /// The paper class of the condition this perturbation creates:
    /// resource exhaustion that only an operator clears is nontransient;
    /// self-healing or timing conditions are transient.
    pub fn class(self) -> FaultClass {
        match self {
            InjectionKind::FdLeakRamp { .. }
            | InjectionKind::FdExhaustion
            | InjectionKind::DiskFull => FaultClass::EnvDependentNonTransient,
            InjectionKind::DnsTimeout { .. }
            | InjectionKind::DnsLatencySpike { .. }
            | InjectionKind::PacketLossBurst { .. }
            | InjectionKind::EntropyStarvation
            | InjectionKind::SchedulerJitter { .. } => FaultClass::EnvDependentTransient,
        }
    }

    /// Applies the perturbation to `env`, acting as the external program
    /// `owner` where resources are owned.
    pub fn apply(self, env: &mut Environment, owner: OwnerId) {
        let now = env.now();
        match self {
            InjectionKind::FdLeakRamp { per_event } => {
                for _ in 0..per_event {
                    if env.fds.open(owner).is_err() {
                        break;
                    }
                }
            }
            InjectionKind::FdExhaustion => {
                env.fds.exhaust_as(owner);
            }
            InjectionKind::DiskFull => env.fs.fill_with_ballast(),
            InjectionKind::DnsTimeout { heal_after } => {
                env.dns.set_health(DnsHealth::Erroring, now + heal_after);
            }
            InjectionKind::DnsLatencySpike { heal_after } => {
                env.dns.set_health(DnsHealth::Slow, now + heal_after);
            }
            InjectionKind::PacketLossBurst { heal_after } => {
                env.net.set_quality(LinkQuality::Slow, now + heal_after);
            }
            InjectionKind::EntropyStarvation => env.entropy.drain(now),
            InjectionKind::SchedulerJitter { seed } => env.force_interleave_seed(seed),
        }
    }
}

impl fmt::Display for InjectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionEvent {
    /// Simulated instant at which the event comes due.
    pub at: SimTime,
    /// What happens.
    pub kind: InjectionKind,
}

/// A named, classed injection plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// Stable plan name.
    pub name: String,
    /// The paper class of the injected condition — the control plan is
    /// [`FaultClass::EnvironmentIndependent`] with no events at all.
    pub class: FaultClass,
    /// The application defect (corpus slug) armed alongside the plan. The
    /// perturbation alone is harmless to a robust application; the study's
    /// failures need a code defect meeting an environment condition.
    pub companion_defect: String,
    /// Events in schedule order.
    pub events: Vec<InjectionEvent>,
}

impl InjectionPlan {
    /// The last scheduled event time, or zero for the control plan.
    pub fn horizon(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |e| e.at)
    }
}

/// Jittered event time for slot `i`: deterministic, strictly increasing in
/// `i`, inside the campaign's pre-trigger window (50–350 ms — every event
/// lands while the workload's leading benign requests are being served at
/// 100 ms apiece, so schedules never race the triggers they set up).
fn slot(rng: &mut Xoshiro256StarStar, i: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(50 + 60 * i + rng.below(20))
}

/// How long self-healing perturbations last before their repair deadline.
const HEAL_AFTER: Duration = Duration::from_secs(2);

/// The standard eight-plan suite, a pure function of `seed`.
///
/// Three nontransient plans (fd leak ramp, fd exhaustion, disk full), four
/// transient ones (DNS timeout, DNS latency, packet loss, entropy
/// starvation + scheduler jitter riding together would hide one kind, so
/// jitter gets its own plan), and one environment-independent control with
/// no events. Each plan's event times and seeds come from
/// `split_seed(seed, plan_index)`, so the suite replays byte-identically
/// and plans stay independent of each other.
pub fn standard_plans(seed: u64) -> Vec<InjectionPlan> {
    let mut plans = Vec::with_capacity(8);
    let rng_for = |i: u64| Xoshiro256StarStar::seed_from(split_seed(seed, i));

    let mut rng = rng_for(0);
    plans.push(InjectionPlan {
        name: "fd-leak-ramp".to_owned(),
        class: FaultClass::EnvDependentNonTransient,
        companion_defect: "apache-edn-02".to_owned(),
        events: (0..4)
            .map(|i| InjectionEvent {
                at: slot(&mut rng, i),
                kind: InjectionKind::FdLeakRamp { per_event: 5 },
            })
            .collect(),
    });

    let mut rng = rng_for(1);
    plans.push(InjectionPlan {
        name: "fd-exhaustion".to_owned(),
        class: FaultClass::EnvDependentNonTransient,
        companion_defect: "apache-edn-02".to_owned(),
        events: vec![InjectionEvent { at: slot(&mut rng, 1), kind: InjectionKind::FdExhaustion }],
    });

    let mut rng = rng_for(2);
    plans.push(InjectionPlan {
        name: "disk-full".to_owned(),
        class: FaultClass::EnvDependentNonTransient,
        companion_defect: "apache-edn-05".to_owned(),
        events: vec![InjectionEvent { at: slot(&mut rng, 2), kind: InjectionKind::DiskFull }],
    });

    let mut rng = rng_for(3);
    plans.push(InjectionPlan {
        name: "dns-timeout".to_owned(),
        class: FaultClass::EnvDependentTransient,
        companion_defect: "apache-edt-01".to_owned(),
        events: vec![InjectionEvent {
            at: slot(&mut rng, 3),
            kind: InjectionKind::DnsTimeout { heal_after: HEAL_AFTER },
        }],
    });

    let mut rng = rng_for(4);
    plans.push(InjectionPlan {
        name: "dns-latency".to_owned(),
        class: FaultClass::EnvDependentTransient,
        companion_defect: "apache-edt-05".to_owned(),
        events: vec![InjectionEvent {
            at: slot(&mut rng, 3),
            kind: InjectionKind::DnsLatencySpike { heal_after: HEAL_AFTER },
        }],
    });

    let mut rng = rng_for(5);
    plans.push(InjectionPlan {
        name: "packet-loss".to_owned(),
        class: FaultClass::EnvDependentTransient,
        companion_defect: "apache-edt-06".to_owned(),
        events: vec![InjectionEvent {
            at: slot(&mut rng, 3),
            kind: InjectionKind::PacketLossBurst { heal_after: HEAL_AFTER },
        }],
    });

    let mut rng = rng_for(6);
    plans.push(InjectionPlan {
        name: "entropy-starvation".to_owned(),
        class: FaultClass::EnvDependentTransient,
        companion_defect: "apache-edt-07".to_owned(),
        events: vec![InjectionEvent {
            at: slot(&mut rng, 3),
            kind: InjectionKind::EntropyStarvation,
        }],
    });

    let mut rng = rng_for(7);
    plans.push(InjectionPlan {
        name: "scheduler-jitter".to_owned(),
        class: FaultClass::EnvDependentTransient,
        companion_defect: "apache-edt-03".to_owned(),
        events: (0..3)
            .map(|i| InjectionEvent {
                at: slot(&mut rng, i),
                kind: InjectionKind::SchedulerJitter { seed: rng.next_u64() },
            })
            .collect(),
    });

    // The control: a deterministic application defect and an untouched
    // environment. If anything "survives" this plan, the harness — not the
    // paper — is wrong.
    plans.push(InjectionPlan {
        name: "ei-control".to_owned(),
        class: FaultClass::EnvironmentIndependent,
        companion_defect: "apache-ei-26".to_owned(),
        events: Vec::new(),
    });

    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_shape() {
        let plans = standard_plans(1);
        assert_eq!(plans.len(), 9);
        let nontransient =
            plans.iter().filter(|p| p.class == FaultClass::EnvDependentNonTransient).count();
        let transient =
            plans.iter().filter(|p| p.class == FaultClass::EnvDependentTransient).count();
        let control =
            plans.iter().filter(|p| p.class == FaultClass::EnvironmentIndependent).count();
        assert_eq!((nontransient, transient, control), (3, 5, 1));
        // Names are unique.
        let mut names: Vec<_> = plans.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), plans.len());
    }

    #[test]
    fn plans_are_a_pure_function_of_the_seed() {
        assert_eq!(standard_plans(9), standard_plans(9));
        assert_ne!(standard_plans(9), standard_plans(10), "seed reaches the schedules");
    }

    #[test]
    fn event_times_fit_the_pre_trigger_window_in_order() {
        for plan in standard_plans(3) {
            let mut prev = SimTime::ZERO;
            for ev in &plan.events {
                assert!(ev.at > prev, "{}: schedule out of order", plan.name);
                assert!(
                    ev.at <= SimTime::ZERO + Duration::from_millis(350),
                    "{}: event past the benign warm-up window",
                    plan.name
                );
                prev = ev.at;
            }
        }
    }

    #[test]
    fn control_plan_has_no_events() {
        let plans = standard_plans(5);
        let control = plans.iter().find(|p| p.name == "ei-control").unwrap();
        assert!(control.events.is_empty());
        assert_eq!(control.horizon(), SimTime::ZERO);
    }

    #[test]
    fn kind_classes_match_healing_behavior() {
        let mut env = Environment::builder().seed(1).fd_limit(8).build();
        let owner = env.register_owner("ext");
        // A transient kind heals with time alone.
        InjectionKind::DnsTimeout { heal_after: Duration::from_secs(1) }.apply(&mut env, owner);
        assert_eq!(env.dns.health_at(env.now()), DnsHealth::Erroring);
        env.advance(Duration::from_secs(2));
        assert_eq!(env.dns.health_at(env.now()), DnsHealth::Healthy);
        // A nontransient kind does not.
        InjectionKind::FdExhaustion.apply(&mut env, owner);
        env.advance(Duration::from_secs(3600));
        assert!(env.fds.is_exhausted(), "descriptor exhaustion never self-heals");
        env.scrub();
        assert!(!env.fds.is_exhausted(), "only the scrub clears it");
    }

    #[test]
    fn fd_leak_ramp_steps_toward_exhaustion() {
        let mut env = Environment::builder().seed(1).fd_limit(16).build();
        let owner = env.register_owner("ext");
        let ramp = InjectionKind::FdLeakRamp { per_event: 5 };
        for step in 1..=3 {
            ramp.apply(&mut env, owner);
            assert_eq!(env.fds.in_use(), (5 * step).min(16));
        }
        assert!(!env.fds.is_exhausted());
        ramp.apply(&mut env, owner);
        assert!(env.fds.is_exhausted(), "fourth step saturates without panicking");
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plans = standard_plans(11);
        let json = serde_json::to_string(&plans).unwrap();
        let back: Vec<InjectionPlan> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plans);
    }
}
