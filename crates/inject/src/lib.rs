//! Plan-driven, fully deterministic environment fault injection.
//!
//! The paper's survival numbers rest on a claim about *classes*: generic
//! recovery survives a fault exactly when the triggering environment
//! condition goes away underneath the retry (§3, §6). The curated corpus
//! exercises that claim only through each bug report's scripted failure
//! mode. This crate tests it the other way around — perturb the simulated
//! environment *directly*, on a schedule, independent of any bug report,
//! and check that each recovery strategy's outcome still matches the
//! class of the injected condition (the microreboot line of work makes
//! the same argument: recovery machinery is only trustworthy under
//! deliberate, repeatable fault injection).
//!
//! Two pieces:
//!
//! - [`plan`] — [`InjectionPlan`]: a named list of scheduled
//!   [`InjectionKind`] perturbations (fd leak ramps, disk-full windows,
//!   DNS outages and latency spikes, packet-loss bursts, entropy
//!   starvation, scheduler jitter), each tagged with the paper class the
//!   injected condition belongs to, plus the companion application defect
//!   that turns the condition into a high-impact failure.
//!   [`standard_plans`] builds the standard suite as a pure function of a
//!   seed via `sim::rng` split seeds.
//! - [`injector`] — [`Injector`]: replays a plan against the environment
//!   through the hardened supervisor's
//!   [`EnvHook`](faultstudy_recovery::EnvHook), applying each event
//!   exactly once as simulated time reaches it.
//!
//! Determinism: plans are pure functions of their seed; the injector holds
//! no randomness at all; every event application is a pure function of
//! `(event, environment)`. A campaign over these plans is therefore
//! byte-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;
pub mod plan;

pub use injector::Injector;
pub use plan::{standard_plans, InjectionEvent, InjectionKind, InjectionPlan};
