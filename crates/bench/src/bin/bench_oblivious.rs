//! Writes `BENCH_oblivious.json`: simulated requests/sec of the
//! oblivious-recovery campaign at 1..N worker threads, plus the
//! EI rescue ratio — the fraction of requests the restart baseline drops
//! that the oblivious family answers instead — as a trajectory that
//! grows run over run, so successive PRs can track both the campaign's
//! throughput and the availability the paper's "generic recovery can't
//! touch this" majority gives up by refusing to go oblivious.
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_oblivious [OUT_PATH]
//! # CI smoke: BENCH_OBLIVIOUS_REQUESTS=6000 cargo run ...
//! ```
//!
//! Before any timing the binary asserts byte identity and aborts on
//! violation, so a recorded number can never come from a wrong result:
//! the oblivious report and its instrumented metrics registry must
//! serialize identically at 1, 2, and 4 worker threads and across chunk
//! sizes, and the rendered cost table must match byte for byte.

use faultstudy_core::taxonomy::FaultClass;
use faultstudy_exec::ParallelSpec;
use faultstudy_harness::{HealMode, ObliviousReport, ObliviousSpec};
use faultstudy_traffic::ArrivalKind;
use std::time::Instant;

const SEED: u64 = 2000;
const IDENTITY_REQUESTS: u64 = 6_000;
const REPS: u32 = 3;

fn thread_counts(host: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Asserts that the campaign is a pure function of its spec at every
/// thread count about to be timed, and across chunk sizes.
fn assert_byte_identity(counts: &[usize]) {
    let spec =
        ObliviousSpec { seed: SEED, requests: IDENTITY_REQUESTS, arrival: ArrivalKind::Poisson };
    let (reference, reference_registry) =
        ObliviousReport::run_instrumented(spec, ParallelSpec::threads(1));
    let reference_json = serde_json::to_string(&reference).expect("report serializes");
    let mut specs: Vec<ParallelSpec> = counts.iter().map(|&t| ParallelSpec::threads(t)).collect();
    specs.push(ParallelSpec::threads(2).with_chunk(7));
    specs.push(ParallelSpec::threads(4).with_chunk(1));
    for parallel in specs {
        let (report, registry) = ObliviousReport::run_instrumented(spec, parallel);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(json, reference_json, "report diverged at {parallel:?}");
        assert_eq!(registry, reference_registry, "registry diverged at {parallel:?}");
        assert_eq!(report.to_string(), reference.to_string(), "rendered bytes diverged");
    }
    eprintln!(
        "byte-identity: report + registry identical at {counts:?} threads and across \
         chunk sizes ({IDENTITY_REQUESTS} requests)"
    );
}

/// The trajectory array carried over from a previous run of this binary.
fn prior_trajectory(out_path: &str) -> Vec<serde_json::Value> {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    if let Some(serde_json::Value::Seq(entries)) = doc.get("trajectory") {
        return entries.clone();
    }
    Vec::new()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_oblivious.json".to_owned());
    let requests: u64 = std::env::var("BENCH_OBLIVIOUS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600_000);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let counts = thread_counts(host);
    let spec = ObliviousSpec { seed: SEED, requests, arrival: ArrivalKind::Poisson };

    assert_byte_identity(&counts);

    let mut rows = Vec::new();
    let mut one_thread_rate = 0.0f64;
    for &threads in &counts {
        let parallel = ParallelSpec::threads(threads);
        let secs = time_best(|| {
            std::hint::black_box(ObliviousReport::run_with(spec, parallel));
        });
        let requests_per_sec = requests as f64 / secs;
        eprintln!(
            "oblivious {threads:>2} threads: {requests_per_sec:>12.0} simulated requests/sec"
        );
        if threads == 1 {
            one_thread_rate = requests_per_sec;
        }
        rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "requests_per_sec": requests_per_sec,
        }));
    }

    // One real run for the comparison summary recorded next to the
    // rates: the tracked number is the fraction of the restart
    // baseline's EI drops that the discard mode rescues, and the oracle
    // violations the manufactured mode pays for the same rescue.
    let report = ObliviousReport::run_with(spec, ParallelSpec::threads(1));
    assert!(report.anomalies.is_empty(), "bench campaign anomalies: {:?}", report.anomalies);
    let ei = FaultClass::EnvironmentIndependent;
    let restart = report.class_stats(ei, HealMode::Restart);
    let oblivious = report.class_stats(ei, HealMode::Oblivious);
    let rescued = restart.dropped.saturating_sub(oblivious.dropped);
    let rescue_ratio =
        if restart.dropped > 0 { rescued as f64 / restart.dropped as f64 } else { 0.0 };
    let (_, manufactured, oracle) = report.class_costs(ei, HealMode::Manufactured);
    let totals = report.totals();
    eprintln!(
        "ledger: {} offered, {:.2}% answered, {} dropped; EI rescue ratio {rescue_ratio:.2} \
         ({manufactured} manufactured, {oracle} oracle violations)",
        totals.offered,
        100.0 * totals.availability(),
        totals.dropped,
    );

    let mut trajectory = prior_trajectory(&out_path);
    trajectory.push(serde_json::json!({
        "requests": requests,
        "requests_per_sec": one_thread_rate,
        "ei_rescue_ratio": rescue_ratio,
        "ei_oracle_violations_manufactured": oracle,
    }));

    let comparison = serde_json::json!({
        "ei_restart_dropped": restart.dropped,
        "ei_oblivious_dropped": oblivious.dropped,
        "ei_rescue_ratio": rescue_ratio,
        "ei_manufactured_substitutes": manufactured,
        "ei_oracle_violations_manufactured": oracle,
        "offered": totals.offered,
        "availability_pct": 100.0 * totals.availability(),
        "dropped": totals.dropped,
    });
    let doc = serde_json::json!({
        "host_available_parallelism": host,
        "seed": SEED,
        "requests": requests,
        "arrival": "poisson",
        "units": report.cells.len(),
        "identity": "report + registry byte-identical at 1/2/4 threads and across chunk sizes",
        "comparison": comparison,
        "per_threads": rows,
        "trajectory": serde_json::Value::Seq(trajectory),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_oblivious.json");
    eprintln!("wrote {out_path}");
}
