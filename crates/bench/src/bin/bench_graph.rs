//! Writes `BENCH_graph.json`: simulated requests/sec of the graph
//! campaign at 1..N worker threads, plus the channel-vs-process TTR
//! ratio on sticky wedges and the peak downstream-amplification ratio as
//! a trajectory that grows run over run, so successive PRs can track the
//! campaign's throughput, the per-channel recovery edge, and the retry
//! cascade cost together.
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_graph [OUT_PATH]
//! # CI smoke: BENCH_GRAPH_REQUESTS=7200 cargo run ...
//! ```
//!
//! Before any timing the binary asserts byte identity and aborts on
//! violation, so a recorded number can never come from a wrong result:
//! the graph report and its instrumented metrics registry must serialize
//! identically at 1, 2, and 4 worker threads and across chunk sizes, and
//! the rendered campaign table must match byte for byte.

use faultstudy_core::taxonomy::FaultClass;
use faultstudy_exec::ParallelSpec;
use faultstudy_graph::PlaneKind;
use faultstudy_harness::graph::GRAPH_BUDGETS;
use faultstudy_harness::{GraphReport, GraphSpec};
use faultstudy_traffic::ArrivalKind;
use std::time::Instant;

const SEED: u64 = 2000;
const IDENTITY_REQUESTS: u64 = 7_200;
const REPS: u32 = 3;

fn thread_counts(host: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Asserts that the campaign is a pure function of its spec at every
/// thread count about to be timed, and across chunk sizes.
fn assert_byte_identity(counts: &[usize]) {
    let spec = GraphSpec { seed: SEED, requests: IDENTITY_REQUESTS, arrival: ArrivalKind::Poisson };
    let (reference, reference_registry) =
        GraphReport::run_instrumented(spec, ParallelSpec::threads(1));
    let reference_json = serde_json::to_string(&reference).expect("report serializes");
    let mut specs: Vec<ParallelSpec> = counts.iter().map(|&t| ParallelSpec::threads(t)).collect();
    specs.push(ParallelSpec::threads(2).with_chunk(7));
    specs.push(ParallelSpec::threads(4).with_chunk(1));
    for parallel in specs {
        let (report, registry) = GraphReport::run_instrumented(spec, parallel);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(json, reference_json, "report diverged at {parallel:?}");
        assert_eq!(registry, reference_registry, "registry diverged at {parallel:?}");
        assert_eq!(report.to_string(), reference.to_string(), "rendered bytes diverged");
    }
    eprintln!(
        "byte-identity: report + registry identical at {counts:?} threads and across \
         chunk sizes ({IDENTITY_REQUESTS} requests)"
    );
}

/// The trajectory array carried over from a previous run of this binary.
fn prior_trajectory(out_path: &str) -> Vec<serde_json::Value> {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    if let Some(serde_json::Value::Seq(entries)) = doc.get("trajectory") {
        return entries.clone();
    }
    Vec::new()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_graph.json".to_owned());
    let requests: u64 =
        std::env::var("BENCH_GRAPH_REQUESTS").ok().and_then(|v| v.parse().ok()).unwrap_or(600_000);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let counts = thread_counts(host);
    let spec = GraphSpec { seed: SEED, requests, arrival: ArrivalKind::Poisson };

    assert_byte_identity(&counts);

    let mut rows = Vec::new();
    let mut one_thread_rate = 0.0f64;
    for &threads in &counts {
        let parallel = ParallelSpec::threads(threads);
        let secs = time_best(|| {
            std::hint::black_box(GraphReport::run_with(spec, parallel));
        });
        let requests_per_sec = requests as f64 / secs;
        eprintln!("graph {threads:>2} threads: {requests_per_sec:>12.0} simulated requests/sec");
        if threads == 1 {
            one_thread_rate = requests_per_sec;
        }
        rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "requests_per_sec": requests_per_sec,
        }));
    }

    // One real run for the comparison summary recorded next to the rates:
    // the tracked numbers are how much faster per-channel recovery clears
    // a sticky wedge than process supervision, and how hard the retry
    // sweep's full budget re-drives the db tier.
    let report = GraphReport::run_with(spec, ParallelSpec::threads(1));
    let full = *GRAPH_BUDGETS.last().expect("sweep is nonempty");
    let edn = FaultClass::EnvDependentNonTransient;
    let channel_p50 = report.class_ttr(edn, PlaneKind::Channel, full).p50().unwrap_or(0);
    let process_p50 = report.class_ttr(edn, PlaneKind::Process, full).p50().unwrap_or(0);
    let ttr_ratio = if channel_p50 > 0 { process_p50 as f64 / channel_p50 as f64 } else { 0.0 };
    let amplification = report.max_amplification(full);
    let totals = report.graph_totals();
    eprintln!(
        "ledger: {} offered, {:.2}% answered, {} dropped; sticky TTR p50 \
         process/channel = {ttr_ratio:.2}x; max amplification {amplification:.2}",
        totals.base.offered,
        100.0 * totals.base.availability(),
        totals.base.dropped,
    );

    let mut trajectory = prior_trajectory(&out_path);
    trajectory.push(serde_json::json!({
        "requests": requests,
        "requests_per_sec": one_thread_rate,
        "ttr_ratio_process_over_channel": ttr_ratio,
        "max_amplification": amplification,
    }));

    let comparison = serde_json::json!({
        "sticky_ttr_p50_process_ns": process_p50,
        "sticky_ttr_p50_channel_ns": channel_p50,
        "ttr_ratio_process_over_channel": ttr_ratio,
        "max_amplification": amplification,
        "offered": totals.base.offered,
        "availability_pct": 100.0 * totals.base.availability(),
        "dropped": totals.base.dropped,
        "channel_recoveries": totals.channel_recoveries,
        "node_restarts": totals.node_restarts,
    });
    let doc = serde_json::json!({
        "host_available_parallelism": host,
        "seed": SEED,
        "requests": requests,
        "arrival": "poisson",
        "units": report.cells.len(),
        "identity": "report + registry byte-identical at 1/2/4 threads and across chunk sizes",
        "comparison": comparison,
        "per_threads": rows,
        "trajectory": serde_json::Value::Seq(trajectory),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_graph.json");
    eprintln!("wrote {out_path}");
}
