//! Writes `BENCH_textscan.json`: naive vs automaton text-scan throughput
//! (reports/sec) over the paper-scale 44,000-report MySQL archive at one
//! thread, so the perf trajectory records what the single-pass engine
//! buys.
//!
//! Per report, the **naive** side does what the pre-engine code did:
//! `KeywordQuery::matches_naive` (one `full_text` concatenation + one
//! `to_lowercase` copy + one `contains` per keyword) and
//! `Evidence::extract_naive` (a second concatenation, two more lowercase
//! copies, and ~90 per-pattern `contains` traversals). The **automaton**
//! side is the engine's intended shape: exactly one Aho–Corasick pass over
//! each report field into a [`faultstudy_textscan::HitSet`], from which
//! both the keyword verdict and the full evidence fall out as bitset
//! probes — zero per-report heap traffic beyond the evidence's condition
//! vector. Both sides return bit-identical results, which this bin asserts
//! over the whole archive before timing.
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_textscan [OUT_PATH]
//! ```

use faultstudy_core::evidence::Evidence;
use faultstudy_core::scanset;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_mining::KeywordQuery;
use std::time::Instant;

const SEED: u64 = 2000;
const REPS: u32 = 5;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_textscan.json".to_owned());
    let population =
        SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Mysql, SEED));
    let reports = &population.reports;
    let query = KeywordQuery::mysql();

    // The two paths must agree bit-for-bit before their speed means anything.
    let set = scanset::shared();
    for r in reports {
        let hits = set.hits_report(r);
        assert_eq!(
            set.matches_mysql_keywords(&hits),
            query.matches_naive(r),
            "keyword mismatch on {}",
            r.id
        );
        assert_eq!(query.matches(r), query.matches_naive(r), "keyword mismatch on {}", r.id);
        assert_eq!(
            Evidence::from_hits(&hits),
            Evidence::extract_naive(r),
            "evidence mismatch on {}",
            r.id
        );
    }

    let naive_secs = time_best(|| {
        for r in reports {
            std::hint::black_box(query.matches_naive(r));
            std::hint::black_box(Evidence::extract_naive(r));
        }
    });
    let auto_secs = time_best(|| {
        for r in reports {
            let hits = set.hits_report(r);
            std::hint::black_box(set.matches_mysql_keywords(&hits));
            std::hint::black_box(Evidence::from_hits(&hits));
        }
    });

    let n = reports.len() as f64;
    let naive_rps = n / naive_secs;
    let auto_rps = n / auto_secs;
    let speedup = naive_secs / auto_secs;
    eprintln!("naive     1 thread: {naive_rps:>12.1} reports/sec");
    eprintln!("automaton 1 thread: {auto_rps:>12.1} reports/sec");
    eprintln!("speedup: {speedup:.2}x");

    let naive = serde_json::json!({ "seconds": naive_secs, "reports_per_sec": naive_rps });
    let automaton = serde_json::json!({ "seconds": auto_secs, "reports_per_sec": auto_rps });
    let doc = serde_json::json!({
        "app": "mysql",
        "archive_size": reports.len(),
        "seed": SEED,
        "threads": 1,
        "work_per_report": "keyword match + evidence extraction (automaton: one shared scan)",
        "naive": naive,
        "automaton": automaton,
        "speedup": speedup,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_textscan.json");
    eprintln!("wrote {out_path}");
}
