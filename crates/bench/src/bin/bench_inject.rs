//! Writes `BENCH_inject.json`: determinism and overhead of the hardened
//! supervisor and the injection campaign.
//!
//! Correctness comes before timing, in two steps:
//!
//! 1. **Thread invariance**: the injection campaign's report must
//!    serialize to byte-identical JSON at 1, 2, and 8 worker threads, and
//!    the instrumented registry must match too — units seeded by
//!    `split_seed(seed, index)` and folded in index order are a pure
//!    function of the master seed.
//! 2. **Inert hardening is free of behavior**: driving the transient
//!    corpus experiments through [`run_workload_supervised`] with every
//!    policy armed but inert (no watchdog deadline, zero backoff, an
//!    unreachable breaker threshold, scrubbing off) must reproduce the
//!    bare [`run_workload`] outcomes exactly.
//!
//! Only then is the supervisor's overhead timed with injection disabled:
//! best-of-`REPS` wall clock for the bare loop versus the inert-hardened
//! one over the same experiments. The budget is <5% (the hardening adds a
//! breaker bookkeeping struct and a handful of branch checks per attempt,
//! nothing per successful request).
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_inject [OUT_PATH]
//! # CI smoke: BENCH_INJECT_REPS=1 BENCH_INJECT_ROUNDS=2 cargo run ...
//! ```

use faultstudy_apps::spawn_app;
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::full_corpus;
use faultstudy_env::Environment;
use faultstudy_exec::ParallelSpec;
use faultstudy_harness::{InjectReport, InjectSpec, StrategyKind};
use faultstudy_recovery::{run_workload, run_workload_supervised, SupervisorConfig, WorkloadRun};
use faultstudy_sim::rng::split_seed;
use std::time::Instant;

const SEED: u64 = 2000;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Every hardening knob armed but chosen so no policy can change the run:
/// hang detection without a deadline cost, a zero-delay backoff schedule,
/// a breaker that would need more consecutive failures than any strategy
/// budget allows, and scrubbing off.
fn inert_config() -> SupervisorConfig {
    let mut config = SupervisorConfig::permissive();
    config.breaker_threshold = u32::MAX;
    config
}

/// Drives every transient corpus fault under the retry-family strategies,
/// through the bare loop or the supervised one.
fn transient_sweep(rounds: u32, supervised: Option<&SupervisorConfig>) -> Vec<WorkloadRun> {
    let corpus = full_corpus();
    let mut outs = Vec::new();
    for round in 0..rounds {
        for fault in corpus.iter().filter(|f| f.class() == FaultClass::EnvDependentTransient) {
            for strategy in
                [StrategyKind::Restart, StrategyKind::Rollback, StrategyKind::Progressive]
            {
                let mut env = Environment::builder()
                    .seed(split_seed(SEED, u64::from(round)))
                    .fd_limit(16)
                    .proc_slots(8)
                    .fs_capacity(256 * 1024)
                    .max_file_size(64 * 1024)
                    .build();
                let mut app = spawn_app(fault.app(), &mut env);
                app.inject(fault.slug(), &mut env).expect("corpus fault injects");
                let benign = app.benign_request();
                let trigger = app.trigger_request(fault.slug()).expect("corpus fault triggers");
                let mut workload = vec![benign.clone(), benign.clone()];
                for _ in 0..fault.trigger_reps() {
                    workload.push(trigger.clone());
                }
                workload.push(benign);
                let mut strat = strategy.build();
                let run = match supervised {
                    None => run_workload(app.as_mut(), &mut env, &workload, strat.as_mut()),
                    Some(config) => {
                        run_workload_supervised(
                            app.as_mut(),
                            &mut env,
                            &workload,
                            strat.as_mut(),
                            config,
                            None,
                        )
                        .run
                    }
                };
                outs.push(run);
            }
        }
    }
    outs
}

/// One timed run of `f`, in wall-clock seconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall-clock seconds for `a` and `b`, interleaved so both
/// see the same machine conditions.
fn time_pair<A: FnMut(), B: FnMut()>(reps: u32, mut a: A, mut b: B) -> (f64, f64) {
    let _ = time_once(&mut a);
    let _ = time_once(&mut b);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_a = best_a.min(time_once(&mut a));
        best_b = best_b.min(time_once(&mut b));
    }
    (best_a, best_b)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_inject.json".to_owned());
    let reps = env_or("BENCH_INJECT_REPS", 15);
    let rounds = env_or("BENCH_INJECT_ROUNDS", 20);
    let spec = InjectSpec { seed: SEED };

    // 1. The campaign is a pure function of the master seed: report and
    //    registry byte-identical at every thread count.
    let (reference, registry) = InjectReport::run_instrumented(spec, ParallelSpec::threads(1));
    assert!(reference.anomalies.is_empty(), "class contract violated: {:?}", reference.anomalies);
    let reference_json = serde_json::to_string(&reference).expect("report serializes");
    for threads in [2usize, 8] {
        let (report, reg) = InjectReport::run_instrumented(spec, ParallelSpec::threads(threads));
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(json, reference_json, "report diverged at {threads} threads");
        assert_eq!(reg, registry, "registry diverged at {threads} threads");
    }
    eprintln!("identity: injection report + registry byte-identical at 1/2/8 threads");

    // 2. Inert hardening must not change a single outcome.
    let inert = inert_config();
    let bare = transient_sweep(rounds.min(3), None);
    let hardened = transient_sweep(rounds.min(3), Some(&inert));
    assert_eq!(bare, hardened, "inert-hardened supervision diverged from the bare loop");
    eprintln!("identity: inert-hardened outcomes == bare outcomes over the transient corpus");

    // 3. Only now is the supervisor overhead worth measuring, with
    //    injection disabled: the bare loop versus the inert-hardened one.
    let (bare_secs, hardened_secs) = time_pair(
        reps,
        || {
            std::hint::black_box(transient_sweep(rounds, None));
        },
        || {
            std::hint::black_box(transient_sweep(rounds, Some(&inert)));
        },
    );
    let overhead_pct = (hardened_secs / bare_secs - 1.0) * 100.0;
    eprintln!("bare loop:       {bare_secs:.4}s");
    eprintln!("inert hardening: {hardened_secs:.4}s");
    eprintln!("overhead:        {overhead_pct:+.2}% (budget <5%)");

    let doc = serde_json::json!({
        "seed": SEED,
        "reps": reps,
        "rounds": rounds,
        "identity": "injection report + registry byte-identical at 1/2/8 threads; \
                     inert-hardened outcomes equal to the bare loop",
        "campaign_units": reference.cells.len(),
        "watchdog_fires": reference.watchdog_fires(),
        "breaker_trips": reference.breaker_trips(),
        "scrubs": reference.scrubs(),
        "bare_seconds": bare_secs,
        "hardened_seconds": hardened_secs,
        "overhead_pct": overhead_pct,
        "budget_pct": 5.0,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_inject.json");
    eprintln!("wrote {out_path}");
}
