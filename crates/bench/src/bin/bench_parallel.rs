//! Writes `BENCH_parallel.json`: campaign samples/sec and mining
//! reports/sec at 1..N worker threads, plus a samples/sec trajectory that
//! grows run over run, so successive PRs can track parallel throughput.
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_parallel [OUT_PATH]
//! ```
//!
//! Before any timing the binary asserts two correctness preconditions and
//! aborts on violation, so a recorded number can never come from a wrong
//! result:
//!
//! 1. **Byte identity**: the streaming campaign fold produces exactly the
//!    report and metrics registry of the materialized reference, at every
//!    measured thread count.
//! 2. **No oversubscription cliff** (checked after timing): running with
//!    more threads than cores must not collapse below half the 1-thread
//!    rate — the chunked work queue keeps contention amortized.
//!
//! The existing `trajectory` array of the output file is preserved and
//! this run's 1-thread rate is appended, so the file accumulates history
//! instead of overwriting it.

use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_exec::ParallelSpec;
use faultstudy_harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy_mining::{Archive, SelectionPipeline};
use std::time::Instant;

const CAMPAIGN_SAMPLES: u32 = 20_000;
const IDENTITY_SAMPLES: u32 = 600;
const CAMPAIGN_SEED: u64 = 2000;
const REPS: u32 = 3;

fn thread_counts(host: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Asserts that the streaming fold is byte-identical to the materialized
/// reference at every thread count about to be timed.
fn assert_byte_identity(counts: &[usize]) {
    let spec = CampaignSpec { samples: IDENTITY_SAMPLES, seed: CAMPAIGN_SEED };
    let (reference, reference_registry) =
        CampaignReport::run_materialized(spec, ParallelSpec::SEQUENTIAL, true);
    for &threads in counts {
        let (streamed, registry) =
            CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
        assert_eq!(
            streamed, reference,
            "streaming fold diverged from the materialized reference at {threads} threads"
        );
        assert_eq!(
            registry, reference_registry,
            "streaming registry diverged from the materialized reference at {threads} threads"
        );
        assert_eq!(
            streamed.to_string(),
            reference.to_string(),
            "rendered report bytes diverged at {threads} threads"
        );
    }
    eprintln!(
        "byte-identity: streaming == materialized at {counts:?} threads ({IDENTITY_SAMPLES} samples)"
    );
}

/// The trajectory array carried over from a previous run of this binary,
/// or — for files written before the trajectory existed — a single entry
/// reconstructed from the old 1-thread campaign rate.
fn prior_trajectory(out_path: &str) -> Vec<serde_json::Value> {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) else {
        return Vec::new();
    };
    if let Some(serde_json::Value::Seq(entries)) = doc.get("trajectory") {
        return entries.clone();
    }
    // Legacy layout: seed the trajectory with the old 1-thread rate.
    let legacy = doc
        .get("campaign")
        .and_then(|c| {
            let samples = c.get("samples")?.as_u64()?;
            let rows = match c.get("per_threads")? {
                serde_json::Value::Seq(rows) => rows,
                _ => return None,
            };
            rows.iter()
                .find(|row| row.get("threads").and_then(|t| t.as_u64()) == Some(1))
                .and_then(|row| row.get("samples_per_sec")?.as_f64())
                .map(|rate| (samples, rate))
        })
        .map(|(samples, rate)| {
            serde_json::json!({
                "samples": samples,
                "samples_per_sec": rate,
            })
        });
    legacy.into_iter().collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let counts = thread_counts(host);
    let spec = CampaignSpec { samples: CAMPAIGN_SAMPLES, seed: CAMPAIGN_SEED };

    assert_byte_identity(&counts);

    let population =
        SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Mysql, CAMPAIGN_SEED));
    let archive = Archive::from_columns(AppKind::Mysql, population.to_columns());
    let pipeline = SelectionPipeline::for_app(AppKind::Mysql);

    let mut campaign_rows = Vec::new();
    let mut mining_rows = Vec::new();
    let mut campaign_rates = Vec::new();
    for &threads in &counts {
        let parallel = ParallelSpec::threads(threads);
        let secs = time_best(|| {
            std::hint::black_box(CampaignReport::run_with(spec, parallel));
        });
        let samples_per_sec = f64::from(CAMPAIGN_SAMPLES) / secs;
        eprintln!("campaign {threads:>2} threads: {samples_per_sec:>10.1} samples/sec");
        campaign_rates.push((threads, samples_per_sec));
        campaign_rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "samples_per_sec": samples_per_sec,
        }));

        let secs = time_best(|| {
            std::hint::black_box(pipeline.run_with(&archive, parallel));
        });
        let reports_per_sec = archive.len() as f64 / secs;
        eprintln!("mining   {threads:>2} threads: {reports_per_sec:>10.1} reports/sec");
        mining_rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "reports_per_sec": reports_per_sec,
        }));
    }

    // Oversubscription non-regression: with the chunked work queue, extra
    // threads on a saturated host idle at the queue instead of thrashing,
    // so no thread count may fall below half the 1-thread rate.
    let one_thread = campaign_rates
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, rate)| rate)
        .expect("1-thread row always measured");
    for &(threads, rate) in &campaign_rates {
        assert!(
            rate >= one_thread * 0.5,
            "oversubscription regression: {threads} threads ran at {rate:.0} samples/sec, \
             under half the 1-thread {one_thread:.0}"
        );
    }

    let mut trajectory = prior_trajectory(&out_path);
    trajectory.push(serde_json::json!({
        "samples": CAMPAIGN_SAMPLES,
        "samples_per_sec": one_thread,
    }));

    let campaign = serde_json::json!({
        "samples": CAMPAIGN_SAMPLES,
        "seed": CAMPAIGN_SEED,
        "per_threads": campaign_rows,
    });
    let mining = serde_json::json!({
        "app": "mysql",
        "archive_size": archive.len(),
        "seed": CAMPAIGN_SEED,
        "per_threads": mining_rows,
    });
    let doc = serde_json::json!({
        "host_available_parallelism": host,
        "campaign": campaign,
        "mining": mining,
        "trajectory": serde_json::Value::Seq(trajectory),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_parallel.json");
    eprintln!("wrote {out_path}");
}
