//! Writes `BENCH_parallel.json`: campaign samples/sec and mining
//! reports/sec at 1..N worker threads, so successive PRs can track the
//! parallel-throughput trajectory.
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_parallel [OUT_PATH]
//! ```

use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_exec::ParallelSpec;
use faultstudy_harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy_mining::{Archive, SelectionPipeline};
use std::time::Instant;

const CAMPAIGN_SAMPLES: u32 = 500;
const CAMPAIGN_SEED: u64 = 2000;
const REPS: u32 = 3;

fn thread_counts(host: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`REPS` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spec = CampaignSpec { samples: CAMPAIGN_SAMPLES, seed: CAMPAIGN_SEED };

    let population =
        SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Mysql, CAMPAIGN_SEED));
    let archive = Archive::new(AppKind::Mysql, population.reports.clone());
    let pipeline = SelectionPipeline::for_app(AppKind::Mysql);

    let mut campaign_rows = Vec::new();
    let mut mining_rows = Vec::new();
    for threads in thread_counts(host) {
        let parallel = ParallelSpec::threads(threads);
        let secs = time_best(|| {
            std::hint::black_box(CampaignReport::run_with(spec, parallel));
        });
        let samples_per_sec = f64::from(CAMPAIGN_SAMPLES) / secs;
        eprintln!("campaign {threads:>2} threads: {samples_per_sec:>10.1} samples/sec");
        campaign_rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "samples_per_sec": samples_per_sec,
        }));

        let secs = time_best(|| {
            std::hint::black_box(pipeline.run_with(&archive, parallel));
        });
        let reports_per_sec = archive.len() as f64 / secs;
        eprintln!("mining   {threads:>2} threads: {reports_per_sec:>10.1} reports/sec");
        mining_rows.push(serde_json::json!({
            "threads": threads,
            "seconds": secs,
            "reports_per_sec": reports_per_sec,
        }));
    }

    let campaign = serde_json::json!({
        "samples": CAMPAIGN_SAMPLES,
        "seed": CAMPAIGN_SEED,
        "per_threads": campaign_rows,
    });
    let mining = serde_json::json!({
        "app": "mysql",
        "archive_size": archive.len(),
        "seed": CAMPAIGN_SEED,
        "per_threads": mining_rows,
    });
    let doc = serde_json::json!({
        "host_available_parallelism": host,
        "campaign": campaign,
        "mining": mining,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_parallel.json");
    eprintln!("wrote {out_path}");
}
