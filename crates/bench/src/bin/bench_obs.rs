//! Writes `BENCH_obs.json`: the observability layer's overhead on an
//! instrumented fault-injection campaign versus the plain one.
//!
//! Correctness comes before timing, in two steps:
//!
//! 1. **Byte-identity**: the instrumented campaign's report must serialize
//!    to exactly the same JSON as the uninstrumented one — recording
//!    metrics is pure observation and must not perturb the simulation.
//! 2. **Thread invariance**: the merged registry must be identical at 1, 2,
//!    and 8 worker threads — per-sample registries merged in index order
//!    are a pure function of the seed.
//!
//! Only then is the overhead timed: best-of-`REPS` wall clock for the
//! plain and instrumented campaign at a fixed thread count. The budget is
//! <5% (the registry is a handful of `BTreeMap` upserts per recovery,
//! nothing per successful request).
//!
//! ```text
//! cargo run --release -p faultstudy-bench --bin bench_obs [OUT_PATH]
//! # CI smoke: BENCH_OBS_REPS=1 BENCH_OBS_SAMPLES=60 cargo run ...
//! ```

use faultstudy_exec::ParallelSpec;
use faultstudy_harness::{CampaignReport, CampaignSpec};
use std::time::Instant;

const SEED: u64 = 2000;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One timed run of `f`, in wall-clock seconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall-clock seconds for `a` and `b`, interleaved so both
/// see the same machine conditions (frequency drift, competing load).
fn time_pair<A: FnMut(), B: FnMut()>(reps: u32, mut a: A, mut b: B) -> (f64, f64) {
    // Warm-up pass: fault in code and allocator state before timing.
    let _ = time_once(&mut a);
    let _ = time_once(&mut b);
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_a = best_a.min(time_once(&mut a));
        best_b = best_b.min(time_once(&mut b));
    }
    (best_a, best_b)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".to_owned());
    let reps = env_or("BENCH_OBS_REPS", 15);
    let samples = env_or("BENCH_OBS_SAMPLES", 600);
    let spec = CampaignSpec { samples, seed: SEED };
    let parallel = ParallelSpec::threads(2);

    // 1. Instrumentation must not perturb the campaign: byte-identical JSON.
    let plain = CampaignReport::run_with(spec, parallel);
    let (instrumented, registry) = CampaignReport::run_instrumented(spec, parallel);
    let plain_json = serde_json::to_string(&plain).expect("report serializes");
    let instrumented_json = serde_json::to_string(&instrumented).expect("report serializes");
    assert_eq!(plain_json, instrumented_json, "instrumented campaign diverged from plain");

    // 2. The registry must be a pure function of the seed: identical at
    //    every thread count.
    for threads in [1usize, 2, 8] {
        let (report, reg) = CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
        assert_eq!(report, plain, "report diverged at {threads} threads");
        assert_eq!(reg, registry, "registry diverged at {threads} threads");
    }
    eprintln!("identity: instrumented == plain, registry invariant at 1/2/8 threads");

    // 3. Only now is the overhead worth measuring.
    let (plain_secs, instrumented_secs) = time_pair(
        reps,
        || {
            std::hint::black_box(CampaignReport::run_with(spec, parallel));
        },
        || {
            std::hint::black_box(CampaignReport::run_instrumented(spec, parallel));
        },
    );
    let overhead_pct = (instrumented_secs / plain_secs - 1.0) * 100.0;
    eprintln!("plain:        {plain_secs:.4}s");
    eprintln!("instrumented: {instrumented_secs:.4}s");
    eprintln!("overhead:     {overhead_pct:+.2}% (budget <5%)");

    let ttr_strategies =
        registry.histograms().filter(|(k, _)| k.starts_with("recovery.ttr{")).count();
    let doc = serde_json::json!({
        "seed": SEED,
        "samples": samples,
        "reps": reps,
        "threads": 2,
        "identity": "report byte-identical; registry invariant at 1/2/8 threads",
        "ttr_strategies": ttr_strategies,
        "plain_seconds": plain_secs,
        "instrumented_seconds": instrumented_secs,
        "overhead_pct": overhead_pct,
        "budget_pct": 5.0,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_obs.json");
    eprintln!("wrote {out_path}");
}
