//! Shared helpers for the Criterion benchmark suite.
//!
//! Each bench target regenerates one of the paper's artifacts (a table, a
//! figure, a funnel, the recovery matrix) and measures the cost of doing
//! so; the ablation target sweeps the design parameters called out in
//! `DESIGN.md` (checkpoint interval, perturbation, rejuvenation period).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::sync::Mutex;

static PRINTED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Prints a reproduced artifact once per bench process per tag, so
/// `cargo bench` output doubles as the regenerated rows/series.
pub fn print_once(tag: &'static str, artifact: &str) {
    let mut printed = PRINTED.lock().expect("print lock");
    if printed.insert(tag) {
        println!("\n===== reproduced artifact: {tag} =====");
        println!("{artifact}");
        println!("=====================================\n");
    }
}
