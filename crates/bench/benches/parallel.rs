//! Benchmarks of the deterministic parallel executor: campaign and mining
//! throughput at 1 vs N worker threads. Because results are byte-identical
//! at any thread count, these benches measure pure scheduling overhead and
//! speedup — the perf trajectory tracked in `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_exec::ParallelSpec;
use faultstudy_harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy_mining::{Archive, SelectionPipeline};
use std::hint::black_box;

fn thread_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_campaign_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_parallel");
    group.sample_size(10);
    let spec = CampaignSpec { samples: 500, seed: 2000 };
    for threads in thread_counts() {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                black_box(CampaignReport::run_with(black_box(spec), ParallelSpec::threads(threads)))
            });
        });
    }
    group.finish();
}

fn bench_mining_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_parallel");
    group.sample_size(10);
    let population =
        SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Mysql, 2000));
    let archive = Archive::from_columns(AppKind::Mysql, population.to_columns());
    let pipeline = SelectionPipeline::for_app(AppKind::Mysql);
    for threads in thread_counts() {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                black_box(pipeline.run_with(black_box(&archive), ParallelSpec::threads(threads)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_parallel, bench_mining_parallel);
criterion_main!(benches);
