//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! E11 checkpoint interval (rollback-recovery replay work vs interval),
//! E12 perturbation (progressive retry vs plain restart on races),
//! E13 rejuvenation period vs leak-driven failures, and
//! E10 the Lee–Iyer reconciliation arithmetic. The sweep logic lives in
//! `faultstudy_harness::ablation` and is shared with `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultstudy_bench::print_once;
use faultstudy_harness::ablation::{
    sweep_checkpoint_interval, sweep_perturbation, sweep_rejuvenation,
};
use faultstudy_report::TandemReconciliation;
use std::hint::black_box;

fn bench_checkpoint_interval(c: &mut Criterion) {
    let mut table = String::from("interval | survived | replayed messages\n");
    for p in sweep_checkpoint_interval(&[1, 2, 4, 8, 16], 11) {
        table.push_str(&format!("{:>8} | {:>8} | {:>17}\n", p.interval, p.survived, p.replayed));
    }
    print_once("E11 checkpoint-interval ablation", &table);

    let mut group = c.benchmark_group("ablate_checkpoint_interval");
    for k in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(sweep_checkpoint_interval(&[k], 11)));
        });
    }
    group.finish();
}

fn bench_perturbation(c: &mut Criterion) {
    let mut table = String::from("retries | unchanged-env survived | perturbed survived\n");
    for p in sweep_perturbation(&[1, 2, 3, 5], 64) {
        table.push_str(&format!(
            "{:>7} | {:>11}/{} | {:>15}/{}\n",
            p.retries, p.instant_survived, p.seeds, p.progressive_survived, p.seeds
        ));
    }
    print_once("E12 perturbation ablation", &table);

    let mut group = c.benchmark_group("ablate_perturbation");
    group.sample_size(10);
    for retries in [1u32, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(retries), &retries, |b, &retries| {
            b.iter(|| black_box(sweep_perturbation(&[retries], 16)));
        });
    }
    group.finish();
}

fn bench_rejuvenation(c: &mut Criterion) {
    let mut table = String::from("period | survived | failures observed\n");
    for p in sweep_rejuvenation(&[1, 2, 3, 4, 8], 13) {
        table.push_str(&format!("{:>6} | {:>8} | {:>17}\n", p.period, p.survived, p.failures));
    }
    print_once("E13 rejuvenation-period ablation", &table);

    let mut group = c.benchmark_group("ablate_rejuvenation");
    for period in [1u32, 2, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &period| {
            b.iter(|| black_box(sweep_rejuvenation(&[period], 13)));
        });
    }
    group.finish();
}

fn bench_lee_iyer(c: &mut Criterion) {
    print_once("E10 Lee-Iyer reconciliation", &TandemReconciliation::default().to_string());
    c.bench_function("lee_iyer", |b| {
        b.iter(|| {
            let r = TandemReconciliation::default();
            black_box((r.pure_generic_transient(), r.inflation_factor()))
        });
    });
}

criterion_group!(
    benches,
    bench_checkpoint_interval,
    bench_perturbation,
    bench_rejuvenation,
    bench_lee_iyer
);
criterion_main!(benches);
