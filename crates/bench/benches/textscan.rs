//! Benchmarks of the single-pass text-scan engine against the naive
//! per-pattern `contains` scans it replaced: lexicon extraction, evidence
//! extraction, keyword matching, and the full §4 funnel. Both sides
//! produce bit-identical output (see the differential property tests), so
//! these measure pure traversal and allocation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultstudy_core::evidence::Evidence;
use faultstudy_core::lexicon::{conditions_in, conditions_in_naive};
use faultstudy_core::report::BugReport;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_mining::{Archive, KeywordQuery, SelectionPipeline};
use std::hint::black_box;

fn sample_reports() -> Vec<BugReport> {
    let spec = PopulationSpec {
        app: AppKind::Mysql,
        archive_size: 500,
        max_duplicates_per_fault: 2,
        seed: 97,
    };
    SyntheticPopulation::generate(&spec).reports
}

fn bench_lexicon(c: &mut Criterion) {
    let reports = sample_reports();
    let texts: Vec<String> = reports.iter().map(BugReport::full_text).collect();
    let mut group = c.benchmark_group("textscan_lexicon");
    group.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| {
            for t in &texts {
                black_box(conditions_in_naive(black_box(t)));
            }
        });
    });
    group.bench_function(BenchmarkId::from_parameter("automaton"), |b| {
        b.iter(|| {
            for t in &texts {
                black_box(conditions_in(black_box(t)));
            }
        });
    });
    group.finish();
}

fn bench_evidence(c: &mut Criterion) {
    let reports = sample_reports();
    let mut group = c.benchmark_group("textscan_evidence");
    group.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| {
            for r in &reports {
                black_box(Evidence::extract_naive(black_box(r)));
            }
        });
    });
    group.bench_function(BenchmarkId::from_parameter("automaton"), |b| {
        b.iter(|| {
            for r in &reports {
                black_box(Evidence::extract(black_box(r)));
            }
        });
    });
    group.finish();
}

fn bench_keywords(c: &mut Criterion) {
    let reports = sample_reports();
    let q = KeywordQuery::mysql();
    let mut group = c.benchmark_group("textscan_keywords");
    group.bench_function(BenchmarkId::from_parameter("naive"), |b| {
        b.iter(|| {
            for r in &reports {
                black_box(q.matches_naive(black_box(r)));
            }
        });
    });
    group.bench_function(BenchmarkId::from_parameter("automaton"), |b| {
        b.iter(|| {
            for r in &reports {
                black_box(q.matches(black_box(r)));
            }
        });
    });
    group.finish();
}

fn bench_funnel(c: &mut Criterion) {
    // The end-to-end §4 funnel on a mid-size archive: keyword stage via
    // the automaton plus the zero-copy index filtering.
    let population =
        SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Gnome, 97));
    let archive = Archive::new(AppKind::Gnome, population.reports);
    let pipeline = SelectionPipeline::for_app(AppKind::Gnome);
    let mut group = c.benchmark_group("textscan_funnel");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("gnome"), |b| {
        b.iter(|| black_box(pipeline.run(black_box(&archive))));
    });
    group.finish();
}

criterion_group!(benches, bench_lexicon, bench_evidence, bench_keywords, bench_funnel);
criterion_main!(benches);
