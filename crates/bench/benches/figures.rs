//! Benchmarks regenerating Figures 1–3 and their shape properties (E4–E6).

use criterion::{criterion_group, criterion_main, Criterion};
use faultstudy_bench::print_once;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_core::timeline::{by_month, by_release, ei_shares, max_deviation, totals_grow};
use faultstudy_corpus::paper_study;
use faultstudy_report::{render_release_figure, render_time_figure};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let study = paper_study();
    let mut all = String::new();
    all.push_str(&render_release_figure(&by_release(&study, AppKind::Apache)));
    all.push('\n');
    all.push_str(&render_time_figure(&by_month(&study, AppKind::Gnome)));
    all.push('\n');
    all.push_str(&render_release_figure(&by_release(&study, AppKind::Mysql)));
    print_once("figures 1-3", &all);

    let mut group = c.benchmark_group("figures");
    group.bench_function("fig1_apache_releases", |b| {
        b.iter(|| {
            let series = by_release(black_box(&study), AppKind::Apache);
            black_box(render_release_figure(&series))
        });
    });
    group.bench_function("fig2_gnome_time", |b| {
        b.iter(|| {
            let series = by_month(black_box(&study), AppKind::Gnome);
            black_box(render_time_figure(&series))
        });
    });
    group.bench_function("fig3_mysql_releases", |b| {
        b.iter(|| {
            let series = by_release(black_box(&study), AppKind::Mysql);
            black_box(render_release_figure(&series))
        });
    });
    group.bench_function("shape_properties", |b| {
        let series = by_release(&study, AppKind::Apache);
        let counts: Vec<_> = series.buckets.iter().map(|b| b.counts).collect();
        b.iter(|| {
            let shares = ei_shares(black_box(counts.clone()), 3);
            black_box((max_deviation(&shares), totals_grow(&counts)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
