//! Benchmarks regenerating Tables 1–3 and the §5.4 aggregate (E1–E3, E7).

use criterion::{criterion_group, criterion_main, Criterion};
use faultstudy_bench::print_once;
use faultstudy_core::study::Study;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{corpus_for, full_corpus, paper_study};
use faultstudy_report::{render_discussion, render_table};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let study = paper_study();
    let mut all = String::new();
    for app in AppKind::ALL {
        all.push_str(&render_table(&study, app));
        all.push('\n');
    }
    print_once("tables 1-3", &all);

    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_apache", |b| {
        let faults: Vec<_> =
            corpus_for(AppKind::Apache).iter().map(|f| f.as_classified()).collect();
        b.iter(|| {
            let study = Study::from_faults(black_box(faults.clone()));
            black_box(render_table(&study, AppKind::Apache))
        });
    });
    group.bench_function("table2_gnome", |b| {
        let faults: Vec<_> = corpus_for(AppKind::Gnome).iter().map(|f| f.as_classified()).collect();
        b.iter(|| {
            let study = Study::from_faults(black_box(faults.clone()));
            black_box(render_table(&study, AppKind::Gnome))
        });
    });
    group.bench_function("table3_mysql", |b| {
        let faults: Vec<_> = corpus_for(AppKind::Mysql).iter().map(|f| f.as_classified()).collect();
        b.iter(|| {
            let study = Study::from_faults(black_box(faults.clone()));
            black_box(render_table(&study, AppKind::Mysql))
        });
    });
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    print_once("section 5.4 discussion", &render_discussion(&paper_study().discussion()));
    c.bench_function("aggregate_study", |b| {
        let faults: Vec<_> = full_corpus().iter().map(|f| f.as_classified()).collect();
        b.iter(|| {
            let study = Study::from_faults(black_box(faults.clone()));
            black_box(study.discussion())
        });
    });
    c.bench_function("corpus_construction", |b| {
        b.iter(|| black_box(full_corpus()));
    });
}

criterion_group!(benches, bench_tables, bench_aggregate);
criterion_main!(benches);
