//! Benchmarks of the end-to-end recovery experiment (E9): single-fault
//! experiments per class and the full 139-fault × 7-strategy matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultstudy_bench::print_once;
use faultstudy_corpus::find;
use faultstudy_harness::experiment::{run_fault_experiment, StrategyKind};
use faultstudy_harness::RecoveryMatrix;
use std::hint::black_box;

fn bench_single_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_experiment");
    let cases = [
        ("ei_count_empty", "mysql-ei-03"),
        ("edn_leak", "apache-edn-01"),
        ("edt_proc_table", "apache-edt-02"),
        ("edt_race", "mysql-edt-01"),
    ];
    for (label, slug) in cases {
        let fault = find(slug).expect("slug exists");
        group.bench_with_input(BenchmarkId::from_parameter(label), &fault, |b, fault| {
            b.iter(|| black_box(run_fault_experiment(fault, StrategyKind::Restart, 2000)));
        });
    }
    group.finish();
}

fn bench_matrix(c: &mut Criterion) {
    print_once("recovery matrix", &RecoveryMatrix::run(2000).to_string());

    let mut group = c.benchmark_group("recovery_matrix");
    group.sample_size(10);
    group.bench_function("full_139x7", |b| {
        b.iter(|| black_box(RecoveryMatrix::run(black_box(2000))));
    });
    for strategy in [StrategyKind::Restart, StrategyKind::AppSpecific] {
        group.bench_with_input(
            BenchmarkId::new("one_strategy", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| black_box(RecoveryMatrix::run_strategies(2000, &[strategy])));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_experiments, bench_matrix);
criterion_main!(benches);
