//! Benchmarks of the §4 selection funnels (E8): archive generation,
//! keyword search throughput, and the full per-application pipelines at
//! paper scale (5220 / 500 / 44,000 raw entries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultstudy_bench::print_once;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_harness::paper_scale_funnels;
use faultstudy_mining::{Archive, KeywordQuery, SelectionPipeline};
use std::hint::black_box;

fn bench_funnels(c: &mut Criterion) {
    let mut shown = String::new();
    for run in paper_scale_funnels(2000) {
        shown.push_str(&format!("{}\n  {}\n", run.outcome, run.quality));
    }
    print_once("section 4 funnels", &shown);

    let mut group = c.benchmark_group("mining_funnel");
    group.sample_size(10);
    for app in AppKind::ALL {
        let population = SyntheticPopulation::generate(&PopulationSpec::paper_scale(app, 2000));
        let archive = Archive::from_columns(app, population.to_columns());
        let pipeline = SelectionPipeline::for_app(app);
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &archive, |b, archive| {
            b.iter(|| black_box(pipeline.run(black_box(archive))));
        });
    }
    group.finish();
}

fn bench_generation_and_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive");
    group.sample_size(10);
    group.bench_function("generate_mysql_44k", |b| {
        let spec = PopulationSpec::paper_scale(AppKind::Mysql, 7);
        b.iter(|| black_box(SyntheticPopulation::generate(black_box(&spec))));
    });

    let population = SyntheticPopulation::generate(&PopulationSpec::paper_scale(AppKind::Mysql, 7));
    let query = KeywordQuery::mysql();
    group.bench_function("keyword_search_44k", |b| {
        b.iter(|| {
            let hits = population.reports.iter().filter(|r| query.matches(r)).count();
            black_box(hits)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_funnels, bench_generation_and_search);
criterion_main!(benches);
