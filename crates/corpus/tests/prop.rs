//! Property tests for the corpus and the synthetic population generator.

use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{corpus_for, full_corpus, PopulationSpec, SyntheticPopulation};
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

proptest! {
    /// Population generation respects the requested archive size and
    /// embeds every curated fault, for any feasible configuration.
    #[test]
    fn population_embeds_every_curated_fault(
        app in app_strategy(),
        extra in 0usize..400,
        dups in 0u32..4,
        seed in any::<u64>()
    ) {
        use std::collections::BTreeSet;
        let base = corpus_for(app).len();
        let spec = PopulationSpec {
            app,
            // Room for all primaries, all possible duplicates, and noise.
            archive_size: base * usize::try_from(dups + 1).expect("small") + extra,
            max_duplicates_per_fault: dups,
            seed,
        };
        let population = SyntheticPopulation::generate(&spec);
        prop_assert_eq!(population.reports.len(), spec.archive_size);
        let slugs: BTreeSet<&str> =
            population.ground_truth.values().map(String::as_str).collect();
        prop_assert_eq!(slugs.len(), base, "every fault has at least its primary");
        // Ids are unique.
        let ids: BTreeSet<u64> = population.reports.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), population.reports.len());
    }

    /// Ground truth is sound: every tracked id exists in the archive and
    /// maps to a real corpus slug.
    #[test]
    fn ground_truth_is_sound(app in app_strategy(), seed in any::<u64>()) {
        let spec = PopulationSpec {
            app,
            archive_size: 300,
            max_duplicates_per_fault: 2,
            seed,
        };
        let population = SyntheticPopulation::generate(&spec);
        let ids: std::collections::BTreeSet<u64> =
            population.reports.iter().map(|r| r.id).collect();
        for (id, slug) in &population.ground_truth {
            prop_assert!(ids.contains(id), "tracked id {id} missing from archive");
            prop_assert!(
                faultstudy_corpus::find(slug).is_some(),
                "unknown slug {slug}"
            );
        }
    }

    /// Synthesized corpus reports always pass the §4 selection and carry
    /// the right application tag.
    #[test]
    fn corpus_reports_are_selectable(idx in 0usize..139, id in 1u64..1_000_000) {
        let corpus = full_corpus();
        let fault = &corpus[idx];
        let report = fault.report(id);
        prop_assert!(report.passes_selection());
        prop_assert_eq!(report.app, fault.app());
        prop_assert_eq!(report.id, id);
        prop_assert!(!report.how_to_repeat.is_empty());
    }
}
