//! Synthetic bug-archive populations with known ground truth.
//!
//! The paper's §4 funnels start from raw archives — 5220 Apache tracker
//! reports, roughly 500 GNOME reports, about 44,000 MySQL mailing-list
//! messages — and narrow them to the studied fault sets. The original
//! archives are long gone, so this module grows a synthetic population
//! around the curated corpus: every curated fault appears as a "primary"
//! report (optionally with duplicates), buried in realistic noise —
//! build/install problems, feature requests, questions, low-impact bugs,
//! and crashes reported against beta versions. Because the generator
//! remembers which report ids correspond to which curated fault, the
//! mining pipeline's precision and recall can be measured exactly — an
//! end-to-end check the paper itself could not perform on its sources.

use crate::{corpus_for, CuratedFault};
use faultstudy_core::flat::ReportColumns;
use faultstudy_core::report::{BugReport, ReportSource, Status, YearMonth};
use faultstudy_core::taxonomy::{AppKind, Severity};
use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Symptom phrases attached to serious reports. These carry the §4 search
/// keywords ("crash", "segmentation", "race", "died") the way real
/// mailing-list posts did.
const SYMPTOM_LINES: &[&str] = &[
    "the server crashed and had to be restarted by hand",
    "it died with a segmentation fault",
    "the process died without any message in the log",
    "crash is accompanied by a core file",
    // Mentions the "race" keyword colloquially without asserting a race
    // condition, so the §4 search finds it but evidence extraction does
    // not mistake it for a named trigger.
    "could this be a race? it crashed shortly after startup",
];

/// Noise categories the §4 funnel must reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NoiseKind {
    BuildProblem,
    InstallProblem,
    FeatureRequest,
    Question,
    DocIssue,
    LowImpactBug,
    BetaCrash,
}

/// Configuration for one synthetic archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Application whose curated faults are embedded.
    pub app: AppKind,
    /// Total number of reports/messages to generate (must be at least the
    /// number of curated faults for the app).
    pub archive_size: usize,
    /// Maximum duplicates generated per curated fault (actual count drawn
    /// uniformly from `0..=max`).
    pub max_duplicates_per_fault: u32,
    /// Random seed.
    pub seed: u64,
}

impl PopulationSpec {
    /// The archive sizes of §4, per application: Apache 5220 tracker
    /// reports, GNOME 500 reports, MySQL 44,000 mailing-list messages.
    pub fn paper_scale(app: AppKind, seed: u64) -> PopulationSpec {
        let archive_size = match app {
            AppKind::Apache => 5220,
            AppKind::Gnome => 500,
            AppKind::Mysql => 44_000,
        };
        PopulationSpec { app, archive_size, max_duplicates_per_fault: 3, seed }
    }
}

/// A generated archive plus its ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticPopulation {
    /// All reports, in randomized archive order.
    pub reports: Vec<BugReport>,
    /// Map from report id to the slug of the curated fault it describes.
    /// Primaries and duplicates both appear; noise reports do not.
    pub ground_truth: BTreeMap<u64, String>,
}

impl SyntheticPopulation {
    /// Generates the population for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.archive_size` cannot hold the app's curated faults.
    pub fn generate(spec: &PopulationSpec) -> SyntheticPopulation {
        let faults = corpus_for(spec.app);
        assert!(
            spec.archive_size >= faults.len(),
            "archive_size {} cannot hold the {} curated faults",
            spec.archive_size,
            faults.len()
        );
        let mut rng = Xoshiro256StarStar::seed_from(spec.seed);
        let mut reports: Vec<BugReport> = Vec::with_capacity(spec.archive_size);
        let mut ground_truth = BTreeMap::new();
        let mut next_id: u64 = 1;
        let take_id = |n: &mut u64| {
            let id = *n;
            *n += 1;
            id
        };

        // Primaries.
        let mut primary_ids = Vec::with_capacity(faults.len());
        for f in &faults {
            let id = take_id(&mut next_id);
            reports.push(decorate_primary(f, id, &mut rng));
            ground_truth.insert(id, f.slug().to_owned());
            primary_ids.push(id);
        }

        // Duplicates, budget permitting.
        if spec.max_duplicates_per_fault > 0 {
            for (f, &primary) in faults.iter().zip(&primary_ids) {
                let dups = rng.below(u64::from(spec.max_duplicates_per_fault) + 1) as u32;
                for _ in 0..dups {
                    if reports.len() >= spec.archive_size {
                        break;
                    }
                    let id = take_id(&mut next_id);
                    let mut dup = decorate_primary(f, id, &mut rng);
                    dup.duplicate_of = Some(primary);
                    dup.title = format!("(again) {}", f.title());
                    reports.push(dup);
                    ground_truth.insert(id, f.slug().to_owned());
                }
            }
        }

        // Noise to fill the archive. Serious-sounding noise (questions
        // about crashes, beta crashes) is rare — in the real MySQL archive
        // only "a few hundred" of 44,000 messages matched the §4 keywords.
        while reports.len() < spec.archive_size {
            let id = take_id(&mut next_id);
            let kind = match rng.below(1000) {
                0..=7 => NoiseKind::BetaCrash,
                8..=15 => NoiseKind::Question,
                _ => *rng
                    .pick(&[
                        NoiseKind::BuildProblem,
                        NoiseKind::InstallProblem,
                        NoiseKind::FeatureRequest,
                        NoiseKind::DocIssue,
                        NoiseKind::LowImpactBug,
                    ])
                    .expect("nonempty"),
            };
            reports.push(noise_report(spec.app, id, kind, &mut rng));
        }

        rng.shuffle(&mut reports);
        SyntheticPopulation { reports, ground_truth }
    }

    /// Number of reports describing real (curated) faults, duplicates
    /// included.
    pub fn true_report_count(&self) -> usize {
        self.ground_truth.len()
    }

    /// Flattens the population into struct-of-arrays columns — one
    /// contiguous text arena plus `(offset, len)` spans per field — the
    /// layout the mining funnel scans. Row order is archive order, so
    /// `columns.materialize(i) == self.reports[i]` for every row.
    pub fn to_columns(&self) -> ReportColumns {
        ReportColumns::from_reports(&self.reports)
    }
}

fn source_for(app: AppKind) -> ReportSource {
    match app {
        AppKind::Apache => ReportSource::Tracker,
        AppKind::Gnome => ReportSource::Debbugs,
        AppKind::Mysql => ReportSource::MailingList,
    }
}

/// A primary report for a curated fault: the synthesized corpus report plus
/// a symptom line carrying a §4 search keyword.
fn decorate_primary(f: &CuratedFault, id: u64, rng: &mut Xoshiro256StarStar) -> BugReport {
    let mut r = f.report(id);
    let symptom = *rng.pick(SYMPTOM_LINES).expect("nonempty");
    r.body = format!("{} {symptom}.", r.body);
    r
}

fn noise_report(app: AppKind, id: u64, kind: NoiseKind, rng: &mut Xoshiro256StarStar) -> BugReport {
    let filed = YearMonth::new(1998, 1).plus_months(rng.below(22) as u32);
    let b = BugReport::builder(app, id).filed(filed).source(source_for(app));
    match kind {
        NoiseKind::BuildProblem => b
            .title(format!("build fails on platform variant {}", id % 17))
            .body("make stops with an undefined symbol during linking.")
            .severity(Severity::Major)
            .status(Status::Closed)
            .version("source tree", true)
            .build(),
        NoiseKind::InstallProblem => b
            .title(format!("installer cannot find prefix {}", id % 13))
            .body("configure script mis-detects the system libraries.")
            .severity(Severity::Minor)
            .version("source tree", true)
            .build(),
        NoiseKind::FeatureRequest => b
            .title(format!("please add an option for behaviour {}", id % 23))
            .body("it would be convenient if the next version supported this.")
            .severity(Severity::Trivial)
            .build(),
        NoiseKind::Question => b
            // Questions often mention the serious keywords without being
            // study faults — the funnel must reject them on severity.
            .title("question: how do I read a core file after a crash?")
            .body("the documentation does not say what to do when it crashed.")
            .severity(Severity::Minor)
            .status(Status::Closed)
            .build(),
        NoiseKind::DocIssue => b
            .title(format!("manual section {} has a typo", id % 31))
            .body("small wording problem, nothing functional.")
            .severity(Severity::Trivial)
            .build(),
        NoiseKind::LowImpactBug => b
            .title(format!("cosmetic glitch in output formatting {}", id % 11))
            .body("alignment is off by one column; output is still correct.")
            .severity(Severity::Minor)
            .status(Status::Fixed)
            .build(),
        NoiseKind::BetaCrash => b
            // A real crash, but on a beta: §4 keeps production versions only.
            .title("development snapshot crashed during testing")
            .body("the beta died with a segmentation fault while we evaluated it.")
            .severity(Severity::Critical)
            .version("2.0-beta", false)
            .build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(app: AppKind, size: usize) -> PopulationSpec {
        PopulationSpec { app, archive_size: size, max_duplicates_per_fault: 2, seed: 42 }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticPopulation::generate(&spec(AppKind::Gnome, 300));
        let b = SyntheticPopulation::generate(&spec(AppKind::Gnome, 300));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticPopulation::generate(&spec(AppKind::Gnome, 300));
        let mut s = spec(AppKind::Gnome, 300);
        s.seed = 43;
        let b = SyntheticPopulation::generate(&s);
        assert_ne!(a, b);
    }

    #[test]
    fn archive_size_and_ground_truth_counts() {
        let p = SyntheticPopulation::generate(&spec(AppKind::Apache, 600));
        assert_eq!(p.reports.len(), 600);
        // 50 primaries plus up to 2 duplicates each.
        assert!(p.true_report_count() >= 50);
        assert!(p.true_report_count() <= 150);
        // Every curated fault has at least its primary.
        let slugs: std::collections::BTreeSet<&str> =
            p.ground_truth.values().map(String::as_str).collect();
        assert_eq!(slugs.len(), 50);
    }

    #[test]
    fn ids_are_unique() {
        let p = SyntheticPopulation::generate(&spec(AppKind::Mysql, 500));
        let mut ids: Vec<u64> = p.reports.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn primaries_pass_selection_and_carry_keywords() {
        let p = SyntheticPopulation::generate(&spec(AppKind::Mysql, 200));
        let keywords = ["crash", "segmentation", "race", "died"];
        for r in &p.reports {
            if p.ground_truth.contains_key(&r.id) && r.duplicate_of.is_none() {
                assert!(r.passes_selection(), "primary {} must survive the funnel", r.id);
                let text = r.full_text().to_lowercase();
                assert!(
                    keywords.iter().any(|k| text.contains(k)),
                    "primary {} lacks a search keyword: {text}",
                    r.id
                );
            }
        }
    }

    #[test]
    fn duplicates_link_to_their_primary() {
        let p = SyntheticPopulation::generate(&spec(AppKind::Apache, 700));
        let mut dup_count = 0;
        for r in &p.reports {
            if let Some(primary) = r.duplicate_of {
                dup_count += 1;
                let primary_slug = p.ground_truth.get(&primary).expect("primary tracked");
                assert_eq!(p.ground_truth.get(&r.id), Some(primary_slug));
            }
        }
        assert!(dup_count > 0, "seed 42 should produce some duplicates");
    }

    #[test]
    fn noise_reports_fail_selection_or_lack_keywords() {
        // The funnel's correctness on noise: every noise report is either
        // rejected by selection or never matches the keyword search.
        let p = SyntheticPopulation::generate(&spec(AppKind::Mysql, 400));
        let keywords = ["crash", "segmentation", "race", "died"];
        for r in &p.reports {
            if !p.ground_truth.contains_key(&r.id) {
                let text = r.full_text().to_lowercase();
                let keyword_hit = keywords.iter().any(|k| text.contains(k));
                assert!(
                    !r.passes_selection() || !keyword_hit,
                    "noise report {} would sneak through: {}",
                    r.id,
                    r.title
                );
            }
        }
    }

    #[test]
    fn columns_mirror_the_report_vector() {
        let p = SyntheticPopulation::generate(&spec(AppKind::Gnome, 250));
        let columns = p.to_columns();
        assert_eq!(columns.len(), p.reports.len());
        for (i, r) in p.reports.iter().enumerate() {
            assert_eq!(&columns.materialize(i), r, "row {i}");
        }
    }

    #[test]
    fn paper_scale_sizes() {
        assert_eq!(PopulationSpec::paper_scale(AppKind::Apache, 1).archive_size, 5220);
        assert_eq!(PopulationSpec::paper_scale(AppKind::Gnome, 1).archive_size, 500);
        assert_eq!(PopulationSpec::paper_scale(AppKind::Mysql, 1).archive_size, 44_000);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_small_archive_rejected() {
        SyntheticPopulation::generate(&spec(AppKind::Apache, 10));
    }
}
