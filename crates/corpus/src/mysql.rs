//! The 44 MySQL faults of Table 3: 38 environment-independent, 4
//! environment-dependent-nontransient, 2 environment-dependent-transient.
//!
//! Figure 3 plots faults per release, totals growing with newer releases
//! except the newest, which "has a substantially lower number of faults
//! because the release is very new" (§5.3). The six environment-dependent
//! entries are the paper's trigger descriptions; `mysql-ei-01` …
//! `mysql-ei-05` are the paper's named examples and the rest are
//! reconstructed deterministic SQL-engine bugs (see `DESIGN.md`).

use crate::fault::Entry;
use faultstudy_env::condition::ConditionKind as C;

/// MySQL's releases in study order (drives Figure 3's x-axis).
pub(crate) const RELEASES: &[&str] = &["3.21.33", "3.22.16", "3.22.20", "3.22.25", "3.23.0"];

/// All 44 MySQL entries.
pub(crate) const ENTRIES: &[Entry] = &[
    // ------------------------ release 0: 3.21.33 (5) ------------------------
    Entry { slug: "mysql-ei-01", title: "updating an index to a value found later while scanning crashes the server", detail: "Scanning the index tree re-finds the updated row and creates duplicate values in the index; solved by first scanning for all matching rows and then updating the found rows.", trigger: None, release_idx: 0, filed: (1998, 5) },
    Entry { slug: "mysql-ei-06", title: "SELECT with a WHERE clause comparing a column to itself dies", detail: "The optimizer folds the self-comparison into an empty key range and dereferences its null head.", trigger: None, release_idx: 0, filed: (1998, 6) },
    Entry { slug: "mysql-ei-07", title: "DROP TABLE on a table with an open temporary copy corrupts the table cache", detail: "The cache entry is freed while the temporary copy still points at it.", trigger: None, release_idx: 0, filed: (1998, 7) },
    Entry { slug: "mysql-ei-08", title: "LIKE pattern ending with an escape character reads past the pattern buffer", detail: "The matcher fetches the escaped byte without a length check.", trigger: None, release_idx: 0, filed: (1998, 8) },
    Entry { slug: "mysql-edn-01", title: "server refuses new connections while a co-hosted web server is busy", detail: "Shortage of file descriptors due to competition between MySQL and a web server on the same machine.", trigger: Some(C::FdExhaustion), release_idx: 0, filed: (1998, 8) },
    // ------------------------ release 1: 3.22.16 (8) ------------------------
    Entry { slug: "mysql-ei-02", title: "a query which selects zero records and has an ORDER BY clause crashes the server", detail: "Due to some missing initialization statements in the sort buffer setup.", trigger: None, release_idx: 1, filed: (1998, 9) },
    Entry { slug: "mysql-ei-09", title: "INSERT of a negative value into an AUTO_INCREMENT column crashes the heap allocator", detail: "The next-value computation wraps and the key buffer is sized from the wrapped length.", trigger: None, release_idx: 1, filed: (1998, 10) },
    Entry { slug: "mysql-ei-10", title: "GROUP BY on a column with NULLs in every row dies", detail: "The group key hasher dereferences the null indicator as a string.", trigger: None, release_idx: 1, filed: (1998, 10) },
    Entry { slug: "mysql-ei-11", title: "ALTER TABLE adding a column named like an existing index aborts", detail: "The duplicate-name check compares against the wrong list and the later rename asserts.", trigger: None, release_idx: 1, filed: (1998, 11) },
    Entry { slug: "mysql-ei-12", title: "SELECT DISTINCT combined with a LIMIT of zero crashes", detail: "The distinct filter flushes a result set that was never allocated.", trigger: None, release_idx: 1, filed: (1998, 11) },
    Entry { slug: "mysql-ei-13", title: "joining a table to itself with USING on a renamed column dies", detail: "Column resolution binds the second instance to a freed alias record.", trigger: None, release_idx: 1, filed: (1998, 12) },
    Entry { slug: "mysql-ei-14", title: "REPLACE into a table with a unique key of length zero crashes", detail: "The key comparator divides by the key segment length.", trigger: None, release_idx: 1, filed: (1998, 12) },
    Entry { slug: "mysql-edn-02", title: "server crashes when it receives a connection request from one remote machine", detail: "Reverse DNS is not configured for the remote host, and the null hostname result is used unchecked.", trigger: Some(C::ReverseDnsMissing), release_idx: 1, filed: (1998, 12) },
    // ------------------------ release 2: 3.22.20 (12) ------------------------
    Entry { slug: "mysql-ei-03", title: "the use of a COUNT clause on an empty table crashes the server", detail: "Caused by a missing check for empty tables.", trigger: None, release_idx: 2, filed: (1999, 1) },
    Entry { slug: "mysql-ei-04", title: "an OPTIMIZE TABLE query crashes the server", detail: "Caused by a missing initialization statement in the repair path.", trigger: None, release_idx: 2, filed: (1999, 1) },
    Entry { slug: "mysql-ei-15", title: "UPDATE with an arithmetic expression dividing by a column of zeros dies", detail: "The constant-folding pass evaluates the division at parse time and longjmps out of the wrong frame.", trigger: None, release_idx: 2, filed: (1999, 2) },
    Entry { slug: "mysql-ei-16", title: "SELECT INTO OUTFILE with an empty field terminator crashes", detail: "The row writer computes the terminator length with strlen(NULL).", trigger: None, release_idx: 2, filed: (1999, 2) },
    Entry { slug: "mysql-ei-17", title: "DELETE with a LIMIT larger than 2^24 on a small table aborts", detail: "The row counter is packed into three bytes in the binlog event and the replay asserts.", trigger: None, release_idx: 2, filed: (1999, 3) },
    Entry { slug: "mysql-ei-18", title: "nested parentheses in a WHERE clause deeper than 64 levels crash the parser", detail: "The yacc stack grows past its fixed arena without a depth check.", trigger: None, release_idx: 2, filed: (1999, 3) },
    Entry { slug: "mysql-ei-19", title: "GRANT on a database name of 65 characters overruns the privilege buffer", detail: "The privilege table row is sized for 64 bytes and the copy is unchecked.", trigger: None, release_idx: 2, filed: (1999, 4) },
    Entry { slug: "mysql-ei-20", title: "SHOW COLUMNS on a table mid-ALTER returns freed memory and dies", detail: "Deterministic under LOCK TABLES: the old definition is freed before the listing completes.", trigger: None, release_idx: 2, filed: (1999, 4) },
    Entry { slug: "mysql-ei-21", title: "string function RPAD to a negative length crashes", detail: "The pad count is cast to unsigned and the result buffer allocation wraps.", trigger: None, release_idx: 2, filed: (1999, 5) },
    Entry { slug: "mysql-ei-22", title: "HAVING referencing an aliased aggregate of an empty group dies", detail: "The alias resolves to an item whose result field was never initialized.", trigger: None, release_idx: 2, filed: (1999, 5) },
    Entry { slug: "mysql-edn-03", title: "inserts fail permanently once a table reaches 2 gigabytes", detail: "The size of the database file is greater than the maximum allowed file size of the platform.", trigger: Some(C::MaxFileSize), release_idx: 2, filed: (1999, 5) },
    Entry { slug: "mysql-edt-01", title: "server occasionally dies during shutdown of a busy instance", detail: "Race condition between the masking of a signal and its arrival; depends on the exact timing of thread scheduling events.", trigger: Some(C::RaceCondition), release_idx: 2, filed: (1999, 5) },
    // ------------------------ release 3: 3.22.25 (15) ------------------------
    Entry { slug: "mysql-ei-05", title: "a FLUSH TABLES command after a LOCK TABLES command crashes the server", detail: "The flush path re-enters the lock manager and frees the held lock list.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "mysql-ei-23", title: "three-way join with overlapping key prefixes returns garbage then aborts", detail: "The range optimizer merges key ranges from different indexes into one buffer.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "mysql-ei-24", title: "CREATE TABLE with 3000 columns crashes instead of reporting an error", detail: "The field-count check happens after the definition array is written.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "mysql-ei-25", title: "timestamp column updated to the year 2038 boundary dies", detail: "The epoch conversion overflows and indexes a month table with a negative value.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "mysql-ei-26", title: "LOAD DATA INFILE with mismatched ENCLOSED BY quotes crashes", detail: "The field splitter leaves the row pointer past the buffer for the unterminated field.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "mysql-ei-27", title: "subtracting two unsigned date intervals yields a crash in formatting", detail: "The sign flag is read from uninitialized memory for zero-length intervals.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "mysql-ei-28", title: "KILL on a connection id that was never assigned asserts the server", detail: "The thread list walker dereferences the sentinel node for unknown ids.", trigger: None, release_idx: 3, filed: (1999, 8) },
    Entry { slug: "mysql-ei-29", title: "SELECT from a MERGE table whose last member was dropped dies", detail: "The member array keeps the stale handler pointer.", trigger: None, release_idx: 3, filed: (1999, 8) },
    Entry { slug: "mysql-ei-30", title: "string comparison with a collation id of 0 crashes the sort", detail: "Collation 0 selects a null comparator from the charset table.", trigger: None, release_idx: 3, filed: (1999, 8) },
    Entry { slug: "mysql-ei-31", title: "UNION of two selects with different column counts aborts instead of erroring", detail: "The result merger assumes equal field arrays and walks off the shorter one.", trigger: None, release_idx: 3, filed: (1999, 9) },
    Entry { slug: "mysql-ei-32", title: "DESCRIBE of a table with a 255-character default value crashes", detail: "The info formatter copies the default into a 128-byte column.", trigger: None, release_idx: 3, filed: (1999, 9) },
    Entry { slug: "mysql-ei-33", title: "REVOKE of a privilege never granted dies updating the grant tables", detail: "The delete path assumes the row exists and unlinks a null node.", trigger: None, release_idx: 3, filed: (1999, 9) },
    Entry { slug: "mysql-ei-34", title: "temporary table name colliding with a system table corrupts the cache", detail: "The lookup prefers the temporary entry but the eviction removes the system one.", trigger: None, release_idx: 3, filed: (1999, 10) },
    Entry { slug: "mysql-edn-04", title: "all statements error out and the server finally aborts", detail: "A full file system prevents all operations on the database, including the error log append.", trigger: Some(C::FileSystemFull), release_idx: 3, filed: (1999, 9) },
    Entry { slug: "mysql-edt-02", title: "administrator command issued during a fresh login crashes the server", detail: "Race condition between a new user login and commands issued by the administrator.", trigger: Some(C::RaceCondition), release_idx: 3, filed: (1999, 10) },
    // ------------------------ release 4: 3.23.0 (4) ------------------------
    Entry { slug: "mysql-ei-35", title: "new table-scan cache crashes on rows larger than the cache itself", detail: "The row copy is split but the second fragment offset is computed from the first's length twice.", trigger: None, release_idx: 4, filed: (1999, 10) },
    Entry { slug: "mysql-ei-36", title: "FULLTEXT search for a word longer than the index token limit dies", detail: "The tokenizer truncates but the scorer reads the original length.", trigger: None, release_idx: 4, filed: (1999, 11) },
    Entry { slug: "mysql-ei-37", title: "REPAIR TABLE on an empty delete-linked chain asserts", detail: "The chain walker expects at least one deleted block.", trigger: None, release_idx: 4, filed: (1999, 11) },
    Entry { slug: "mysql-ei-38", title: "BDB-backed table with a cursor open across COMMIT crashes", detail: "The cursor keeps a pointer into the transaction arena that commit frees.", trigger: None, release_idx: 4, filed: (1999, 11) },
];

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::FaultClass;

    #[test]
    fn counts_match_table_3() {
        let ei = ENTRIES.iter().filter(|e| e.trigger.is_none()).count();
        let edn = ENTRIES
            .iter()
            .filter(|e| {
                e.trigger.is_some_and(|t| {
                    FaultClass::from_condition(Some(t)) == FaultClass::EnvDependentNonTransient
                })
            })
            .count();
        let edt = ENTRIES.len() - ei - edn;
        assert_eq!((ei, edn, edt), (38, 4, 2));
        assert_eq!(ENTRIES.len(), 44);
    }

    #[test]
    fn release_totals_reproduce_figure_3_shape() {
        let mut per_release = [0u32; 5];
        for e in ENTRIES {
            per_release[e.release_idx as usize] += 1;
        }
        assert_eq!(per_release, [5, 8, 12, 15, 4]);
        // Totals grow with newer releases except the very new last one (§5.3).
        assert!(per_release[..4].windows(2).all(|w| w[0] < w[1]));
        assert!(per_release[4] < per_release[3]);
    }

    #[test]
    fn slugs_unique_and_release_indexes_valid() {
        let mut slugs: Vec<&str> = ENTRIES.iter().map(|e| e.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ENTRIES.len());
        assert!(ENTRIES.iter().all(|e| (e.release_idx as usize) < RELEASES.len()));
    }
}
