//! The 45 GNOME faults of Table 2: 39 environment-independent, 3
//! environment-dependent-nontransient, 3 environment-dependent-transient.
//!
//! GNOME's modules release independently, so Figure 2 plots reports per
//! month rather than per release (§5.2); all entries share release index 0
//! and the filing months reproduce the figure's shape (high early counts, a
//! dip, then growth again). The six environment-dependent entries are the
//! paper's own trigger descriptions; `gnome-ei-01` … `gnome-ei-05` are the
//! paper's named examples and the rest are reconstructed deterministic
//! desktop bugs (see `DESIGN.md`).

use crate::fault::Entry;
use faultstudy_env::condition::ConditionKind as C;

/// The single release of the study period.
pub(crate) const RELEASES: &[&str] = &["GNOME 1.0"];

/// All 45 GNOME entries.
pub(crate) const ENTRIES: &[Entry] = &[
    // ------------------------------ 1998-09 (3) ------------------------------
    Entry { slug: "gnome-ei-01", title: "clicking the tasklist tab in gnome-pager settings kills the pager", detail: "The settings notebook dereferences a page record that is never allocated for the tasklist tab.", trigger: None, release_idx: 0, filed: (1998, 9) },
    Entry { slug: "gnome-ei-06", title: "panel applet drag beyond the right edge crashes the panel", detail: "The drop position is divided by a cell width of zero for out-of-range columns.", trigger: None, release_idx: 0, filed: (1998, 9) },
    Entry { slug: "gnome-ei-07", title: "gmc aborts opening a directory whose name is a single dash", detail: "The argument scanner treats the name as an option terminator and frees the list twice.", trigger: None, release_idx: 0, filed: (1998, 9) },
    // ------------------------------ 1998-10 (4) ------------------------------
    Entry { slug: "gnome-ei-02", title: "prev button in the year view of the gnome calendar crashes it", detail: "A value is assigned to a local copy of the variable instead of the global copy.", trigger: None, release_idx: 0, filed: (1998, 10) },
    Entry { slug: "gnome-ei-08", title: "gnumeric crashes pasting a cell range into itself", detail: "The paste iterator walks the region being overwritten.", trigger: None, release_idx: 0, filed: (1998, 10) },
    Entry { slug: "gnome-ei-09", title: "session manager dies restoring a session with zero clients", detail: "The restore loop dereferences the head of an empty client list.", trigger: None, release_idx: 0, filed: (1998, 10) },
    Entry { slug: "gnome-edn-01", title: "applications misaddress their own display after a rename", detail: "The hostname of the machine was changed while the application was running; the stale name is part of the saved state.", trigger: Some(C::HostnameChanged), release_idx: 0, filed: (1998, 10) },
    // ------------------------------ 1998-11 (5) ------------------------------
    Entry { slug: "gnome-ei-03", title: "gnumeric crashes on tab in the define-name dialog", detail: "Caused by initializing a variable to an incorrect value; also triggered from the File/Summary dialog.", trigger: None, release_idx: 0, filed: (1998, 11) },
    Entry { slug: "gnome-ei-10", title: "gnome-pim deletes the wrong appointment when the list is sorted descending", detail: "The row-to-record mapping is recomputed after the delete target is chosen, then the stale index is freed.", trigger: None, release_idx: 0, filed: (1998, 11) },
    Entry { slug: "gnome-ei-11", title: "panel crashes removing the last launcher from a drawer", detail: "The drawer's button array shrinks to zero and the redraw indexes entry 0.", trigger: None, release_idx: 0, filed: (1998, 11) },
    Entry { slug: "gnome-ei-12", title: "gmc segfaults renaming a file to an empty string", detail: "The rename dialog passes the empty buffer straight to the tree relabel.", trigger: None, release_idx: 0, filed: (1998, 11) },
    Entry { slug: "gnome-edt-01", title: "application dies at startup for no apparent reason", detail: "Unknown failure of application which works on a retry.", trigger: Some(C::UnknownTransient), release_idx: 0, filed: (1998, 11) },
    // ------------------------------ 1998-12 (6) ------------------------------
    Entry { slug: "gnome-ei-04", title: "double-clicking a tar.gz icon on the desktop crashes gmc", detail: "Caused by the declaration of a variable as long instead of unsigned long.", trigger: None, release_idx: 0, filed: (1998, 12) },
    Entry { slug: "gnome-ei-13", title: "calendar recurrence editor crashes on a weekly event with no weekday checked", detail: "The recurrence expander divides by the number of selected weekdays.", trigger: None, release_idx: 0, filed: (1998, 12) },
    Entry { slug: "gnome-ei-14", title: "gnumeric aborts loading a sheet whose name contains a slash", detail: "The sheet name is used unescaped as a temporary path component.", trigger: None, release_idx: 0, filed: (1998, 12) },
    Entry { slug: "gnome-ei-15", title: "panel clock applet crashes when the format string is empty", detail: "strftime() output of length zero is passed to a label constructor expecting at least one byte.", trigger: None, release_idx: 0, filed: (1998, 12) },
    Entry { slug: "gnome-ei-16", title: "help browser segfaults on a page with nested unclosed lists", detail: "The list-depth counter underflows and indexes the indent table at -1.", trigger: None, release_idx: 0, filed: (1998, 12) },
    Entry { slug: "gnome-edn-02", title: "desktop becomes unresponsive after hours of audio use", detail: "Open sockets left around by sound utilities while exiting; each open socket consumes a file descriptor and the application runs out of file descriptors.", trigger: Some(C::FdExhaustion), release_idx: 0, filed: (1998, 12) },
    // ------------------------------ 1999-01 (5) ------------------------------
    Entry { slug: "gnome-ei-05", title: "clicking the desktop to dismiss the main menu freezes the desktop", detail: "After popping up the main menu, a click on the desktop to remove the menu deadlocks the grab handling.", trigger: None, release_idx: 0, filed: (1999, 1) },
    Entry { slug: "gnome-ei-17", title: "gmc crashes copying a directory into one of its own subdirectories", detail: "The copy walker revisits the destination and recurses until the stack is gone.", trigger: None, release_idx: 0, filed: (1999, 1) },
    Entry { slug: "gnome-ei-18", title: "gnumeric formula with 255 nested parentheses crashes the parser", detail: "The recursive-descent parser has no depth limit and overruns its evaluation stack.", trigger: None, release_idx: 0, filed: (1999, 1) },
    Entry { slug: "gnome-ei-19", title: "gnome-pim imports a vCalendar with an empty summary and dies on display", detail: "The list view assumes a non-null summary string.", trigger: None, release_idx: 0, filed: (1999, 1) },
    Entry { slug: "gnome-edt-02", title: "image viewer and property editor crash when used together", detail: "Race condition between a image viewer and a property editor; depends on the exact timing of thread scheduling events.", trigger: Some(C::RaceCondition), release_idx: 0, filed: (1999, 1) },
    // ------------------------------ 1999-02 (2) ------------------------------
    Entry { slug: "gnome-ei-20", title: "panel crashes when two applets request the same slot at startup", detail: "Deterministic for a saved layout: the second insert frees the shared slot record.", trigger: None, release_idx: 0, filed: (1999, 2) },
    Entry { slug: "gnome-ei-21", title: "gmc dies listing a directory containing a file with a negative mtime", detail: "The date formatter indexes a month table computed from the negative timestamp.", trigger: None, release_idx: 0, filed: (1999, 2) },
    // ------------------------------ 1999-03 (1) ------------------------------
    Entry { slug: "gnome-ei-22", title: "gnumeric crashes undoing a column delete past the undo limit", detail: "The undo ring frees the oldest entry and then replays it.", trigger: None, release_idx: 0, filed: (1999, 3) },
    // ------------------------------ 1999-04 (2) ------------------------------
    Entry { slug: "gnome-ei-23", title: "calendar crashes on an event spanning the daylight-saving boundary", detail: "The duration computation yields -3600 and the layout allocator takes it as unsigned.", trigger: None, release_idx: 0, filed: (1999, 4) },
    Entry { slug: "gnome-ei-24", title: "panel menu editor segfaults saving an entry with no command", detail: "The serializer writes the command field through a null pointer.", trigger: None, release_idx: 0, filed: (1999, 4) },
    // ------------------------------ 1999-05 (4) ------------------------------
    Entry { slug: "gnome-ei-25", title: "gmc crashes on a desktop icon whose target was deleted", detail: "The metadata refresh dereferences the stat result of the missing target.", trigger: None, release_idx: 0, filed: (1999, 5) },
    Entry { slug: "gnome-ei-26", title: "gnumeric export to CSV writes past the quote buffer for 1024-byte cells", detail: "The quoting expansion doubles the cell but the buffer is sized for the original length.", trigger: None, release_idx: 0, filed: (1999, 5) },
    Entry { slug: "gnome-ei-27", title: "gnome-terminal dies when the scrollback limit is set to zero lines", detail: "The ring allocator returns null for a zero-line buffer and the renderer does not check.", trigger: None, release_idx: 0, filed: (1999, 5) },
    Entry { slug: "gnome-edn-03", title: "gmc crashes editing the properties of one particular file", detail: "The file has an illegal value in the owner field; the application crashes when trying to edit the file or its properties.", trigger: Some(C::CorruptFileMetadata), release_idx: 0, filed: (1999, 5) },
    // ------------------------------ 1999-06 (6) ------------------------------
    Entry { slug: "gnome-ei-28", title: "panel crashes toggling auto-hide while a drawer is open", detail: "The hide animation walks the drawer widget tree after the toggle has destroyed it.", trigger: None, release_idx: 0, filed: (1999, 6) },
    Entry { slug: "gnome-ei-29", title: "gnome-pim todo item with priority 0 crashes the sort", detail: "Priority is used as an index into a five-element colour array starting at 1.", trigger: None, release_idx: 0, filed: (1999, 6) },
    Entry { slug: "gnome-ei-30", title: "gnumeric crashes recalculating a sheet that references a deleted sheet", detail: "The dependency walker resolves the dangling sheet pointer.", trigger: None, release_idx: 0, filed: (1999, 6) },
    Entry { slug: "gnome-ei-31", title: "gmc find dialog crashes on a pattern ending with a backslash", detail: "The glob translator copies the escape target from one past the end of the pattern.", trigger: None, release_idx: 0, filed: (1999, 6) },
    Entry { slug: "gnome-ei-32", title: "background chooser dies previewing a zero-byte image file", detail: "The loader returns null and the preview scaler divides by the image width.", trigger: None, release_idx: 0, filed: (1999, 6) },
    Entry { slug: "gnome-edt-03", title: "applet removal during a pending action crashes the panel", detail: "Race condition between a request for action from an applet and its removal.", trigger: Some(C::RaceCondition), release_idx: 0, filed: (1999, 6) },
    // ------------------------------ 1999-07 (7) ------------------------------
    Entry { slug: "gnome-ei-33", title: "panel session save writes a corrupt config for nested drawers", detail: "The drawer depth is encoded into a fixed two-level key and level three overwrites the parent entry.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-34", title: "calendar month view crashes for appointments ending at midnight", detail: "The end-hour of 24 indexes the 24-entry row table.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-35", title: "gnumeric crashes sorting a selection containing merged cells", detail: "The sorter swaps one half of a merged range and the renderer reads the orphaned half.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-36", title: "gmc dies entering a directory with more than 32767 entries", detail: "The entry counter is a signed short and the progress bar divides by its wrapped value.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-37", title: "gnome-pim crashes printing an empty contact list", detail: "The pagination computes ceil(0 / per_page) with a zero divisor.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-38", title: "panel pager crashes switching to a workspace removed by the window manager", detail: "The pager caches the workspace count and indexes the stale array.", trigger: None, release_idx: 0, filed: (1999, 7) },
    Entry { slug: "gnome-ei-39", title: "file properties dialog dies on a symlink loop", detail: "The target resolver follows links without a depth limit and exhausts the stack.", trigger: None, release_idx: 0, filed: (1999, 7) },
];

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::FaultClass;
    use std::collections::BTreeMap;

    #[test]
    fn counts_match_table_2() {
        let ei = ENTRIES.iter().filter(|e| e.trigger.is_none()).count();
        let edn = ENTRIES
            .iter()
            .filter(|e| {
                e.trigger.is_some_and(|t| {
                    FaultClass::from_condition(Some(t)) == FaultClass::EnvDependentNonTransient
                })
            })
            .count();
        let edt = ENTRIES.len() - ei - edn;
        assert_eq!((ei, edn, edt), (39, 3, 3));
        assert_eq!(ENTRIES.len(), 45);
    }

    #[test]
    fn monthly_totals_reproduce_figure_2_shape() {
        let mut by_month: BTreeMap<(u16, u8), u32> = BTreeMap::new();
        for e in ENTRIES {
            *by_month.entry(e.filed).or_default() += 1;
        }
        let totals: Vec<u32> = by_month.values().copied().collect();
        assert_eq!(totals, [3, 4, 5, 6, 5, 2, 1, 2, 4, 6, 7]);
        // Shape: a dip in the middle, growth at both ends (§5.2).
        let min_pos = totals.iter().enumerate().min_by_key(|(_, v)| **v).unwrap().0;
        assert!(min_pos > 2 && min_pos < totals.len() - 3, "dip is interior");
        assert!(totals.last().unwrap() > totals.first().unwrap());
    }

    #[test]
    fn single_release_study_period() {
        assert!(ENTRIES.iter().all(|e| e.release_idx == 0));
        assert_eq!(RELEASES.len(), 1);
    }

    #[test]
    fn slugs_unique() {
        let mut slugs: Vec<&str> = ENTRIES.iter().map(|e| e.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ENTRIES.len());
    }
}
