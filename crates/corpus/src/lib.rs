//! The curated 139-fault corpus of the DSN 2000 fault study, plus a
//! synthetic bug-population generator for exercising the mining pipeline.
//!
//! The corpus encodes every fault the paper reports: 50 for Apache
//! (Table 1), 45 for GNOME (Table 2), and 44 for MySQL (Table 3). All 26
//! environment-dependent faults carry the paper's own trigger descriptions;
//! the environment-independent faults include the paper's named examples
//! and plausible reconstructions for the remainder (the counts, classes,
//! releases, and dates are what the study's results depend on, and those
//! match the paper exactly — see `DESIGN.md` for the substitution note).
//!
//! # Example
//!
//! ```
//! use faultstudy_corpus::{corpus_for, full_corpus, paper_study};
//! use faultstudy_core::taxonomy::AppKind;
//!
//! assert_eq!(full_corpus().len(), 139);
//! assert_eq!(corpus_for(AppKind::Apache).len(), 50);
//! let study = paper_study();
//! assert_eq!(study.table(AppKind::Mysql).independent, 38);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apache;
pub mod fault;
mod gnome;
mod mysql;
pub mod synthetic;

pub use fault::CuratedFault;
pub use synthetic::{PopulationSpec, SyntheticPopulation};

use faultstudy_core::study::Study;
use faultstudy_core::taxonomy::AppKind;

/// Every fault of the study, Apache first, then GNOME, then MySQL.
pub fn full_corpus() -> Vec<CuratedFault> {
    let mut out = Vec::with_capacity(139);
    out.extend(corpus_for(AppKind::Apache));
    out.extend(corpus_for(AppKind::Gnome));
    out.extend(corpus_for(AppKind::Mysql));
    out
}

/// The faults of one application, in corpus order.
pub fn corpus_for(app: AppKind) -> Vec<CuratedFault> {
    let (entries, releases) = match app {
        AppKind::Apache => (apache::ENTRIES, apache::RELEASES),
        AppKind::Gnome => (gnome::ENTRIES, gnome::RELEASES),
        AppKind::Mysql => (mysql::ENTRIES, mysql::RELEASES),
    };
    entries.iter().map(|e| CuratedFault::from_entry(app, releases, e)).collect()
}

/// Looks up a fault by its stable slug (e.g. `"apache-edt-02"`).
pub fn find(slug: &str) -> Option<CuratedFault> {
    full_corpus().into_iter().find(|f| f.slug() == slug)
}

/// The release labels of one application, oldest first.
pub fn releases_of(app: AppKind) -> &'static [&'static str] {
    match app {
        AppKind::Apache => apache::RELEASES,
        AppKind::Gnome => gnome::RELEASES,
        AppKind::Mysql => mysql::RELEASES,
    }
}

/// The whole corpus aggregated into a [`Study`] — the input to Tables 1–3,
/// the §5.4 discussion, and Figures 1–3.
pub fn paper_study() -> Study {
    Study::from_faults(full_corpus().iter().map(CuratedFault::as_classified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::FaultClass;

    #[test]
    fn corpus_has_exactly_the_paper_counts() {
        let study = paper_study();
        assert_eq!(study.total(), 139);
        let t1 = study.table(AppKind::Apache);
        assert_eq!((t1.independent, t1.nontransient, t1.transient), (36, 7, 7));
        let t2 = study.table(AppKind::Gnome);
        assert_eq!((t2.independent, t2.nontransient, t2.transient), (39, 3, 3));
        let t3 = study.table(AppKind::Mysql);
        assert_eq!((t3.independent, t3.nontransient, t3.transient), (38, 4, 2));
    }

    #[test]
    fn discussion_numbers_match_section_5_4() {
        let d = paper_study().discussion();
        assert_eq!(d.total, 139);
        assert_eq!(d.nontransient.0, 14);
        assert_eq!(d.transient.0, 12);
        assert!(d.independent_range.0 >= 72.0 && d.independent_range.0 < 73.0);
        assert!(d.independent_range.1 > 86.0 && d.independent_range.1 <= 87.0);
    }

    #[test]
    fn find_locates_known_slugs() {
        let f = find("apache-edt-07").expect("entropy fault exists");
        assert_eq!(f.app(), AppKind::Apache);
        assert_eq!(f.class(), FaultClass::EnvDependentTransient);
        assert!(find("no-such-slug").is_none());
    }

    #[test]
    fn slugs_are_globally_unique() {
        let corpus = full_corpus();
        let mut slugs: Vec<&str> = corpus.iter().map(|f| f.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 139);
    }

    #[test]
    fn every_environment_dependent_fault_names_its_trigger() {
        for f in full_corpus() {
            match f.class() {
                FaultClass::EnvironmentIndependent => assert!(f.trigger().is_none(), "{f}"),
                _ => assert!(f.trigger().is_some(), "{f}"),
            }
        }
    }

    #[test]
    fn releases_of_matches_corpus_labels() {
        for app in AppKind::ALL {
            let labels = releases_of(app);
            for f in corpus_for(app) {
                assert!(labels.contains(&f.release()), "{f}");
            }
        }
    }
}
