//! The curated-fault model.
//!
//! Each [`CuratedFault`] is one of the 139 faults of the paper's study,
//! encoded with the application, the triggering environmental condition (if
//! any), release/date metadata matching the shapes of Figures 1–3, and
//! enough text to synthesize a realistic [`BugReport`] whose evidence
//! round-trips through the `faultstudy-core` classifier.

use faultstudy_core::report::{BugReport, ReportSource, Status, YearMonth};
use faultstudy_core::study::ClassifiedFault;
use faultstudy_core::taxonomy::{AppKind, FaultClass, Severity};
use faultstudy_env::condition::ConditionKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Compact static form of one corpus entry, used by the per-app tables.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    /// Stable identifier, e.g. `"apache-edt-03"`.
    pub slug: &'static str,
    /// One-line summary (the report title).
    pub title: &'static str,
    /// Trigger/How-To-Repeat material. For environment-dependent entries
    /// this contains the paper's trigger phrase, which the lexicon
    /// recognises.
    pub detail: &'static str,
    /// The triggering condition; `None` for environment-independent faults.
    pub trigger: Option<ConditionKind>,
    /// Index into the application's release table.
    pub release_idx: u8,
    /// Filing date as `(year, month)`.
    pub filed: (u16, u8),
}

/// One fault of the curated 139-fault corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuratedFault {
    slug: String,
    app: AppKind,
    title: String,
    detail: String,
    trigger: Option<ConditionKind>,
    release_idx: u8,
    release: String,
    filed: YearMonth,
}

impl CuratedFault {
    pub(crate) fn from_entry(app: AppKind, releases: &[&str], e: &Entry) -> CuratedFault {
        CuratedFault {
            slug: e.slug.to_owned(),
            app,
            title: e.title.to_owned(),
            detail: e.detail.to_owned(),
            trigger: e.trigger,
            release_idx: e.release_idx,
            release: releases[e.release_idx as usize].to_owned(),
            filed: YearMonth::new(e.filed.0, e.filed.1),
        }
    }

    /// Stable identifier, e.g. `"mysql-ei-04"`.
    pub fn slug(&self) -> &str {
        &self.slug
    }

    /// The application the fault occurred in.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// One-line summary.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Trigger/mechanism description.
    pub fn detail(&self) -> &str {
        &self.detail
    }

    /// The triggering environmental condition, `None` for
    /// environment-independent faults.
    pub fn trigger(&self) -> Option<ConditionKind> {
        self.trigger
    }

    /// The fault's class, derived from the trigger through the normative
    /// taxonomy rule.
    pub fn class(&self) -> FaultClass {
        FaultClass::from_condition(self.trigger)
    }

    /// How many times the trigger request must be issued for the fault to
    /// manifest. Resource-leak triggers need repetition — each request leaks
    /// a little until the pool is gone — while every other trigger (and
    /// every environment-independent fault) fires on the first attempt.
    pub fn trigger_reps(&self) -> usize {
        match self.trigger {
            Some(ConditionKind::ResourceLeak) => 3,
            _ => 1,
        }
    }

    /// Release the fault was reported against.
    pub fn release(&self) -> &str {
        &self.release
    }

    /// Filing month.
    pub fn filed(&self) -> YearMonth {
        self.filed
    }

    /// The fault as a [`ClassifiedFault`] for study aggregation.
    pub fn as_classified(&self) -> ClassifiedFault {
        ClassifiedFault {
            app: self.app,
            class: self.class(),
            release_idx: self.release_idx,
            release: self.release.clone(),
            filed: self.filed,
        }
    }

    /// Synthesizes the bug report this fault would have appeared as in the
    /// archive, with `id` as the archive id. The report text carries the
    /// fault's trigger phrase (environment-dependent) or a deterministic
    /// reproduction cue (environment-independent), so extracting evidence
    /// from the synthesized report and classifying it reproduces
    /// [`CuratedFault::class`]; the integration tests check this for the
    /// whole corpus.
    pub fn report(&self, id: u64) -> BugReport {
        let source = match self.app {
            AppKind::Apache => ReportSource::Tracker,
            AppKind::Gnome => ReportSource::Debbugs,
            AppKind::Mysql => ReportSource::MailingList,
        };
        let how_to_repeat = if self.trigger.is_none() {
            format!("{} Happens every time the operation is attempted.", self.detail)
        } else {
            self.detail.clone()
        };
        BugReport::builder(self.app, id)
            .title(self.title.clone())
            .body(format!("{} fails in production: {}", self.app, self.title))
            .how_to_repeat(how_to_repeat)
            .developer_notes("confirmed against the released build".to_owned())
            .severity(Severity::Critical)
            .status(Status::Fixed)
            .version(self.release.clone(), true)
            .filed(self.filed)
            .source(source)
            .build()
    }
}

impl fmt::Display for CuratedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.slug, self.app, self.title)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> Entry {
        Entry {
            slug: "test-edn-01",
            title: "server cannot write",
            detail: "operations fail once the full file system condition is reached",
            trigger: Some(ConditionKind::FileSystemFull),
            release_idx: 1,
            filed: (1999, 3),
        }
    }

    #[test]
    fn from_entry_resolves_release_label() {
        let f = CuratedFault::from_entry(AppKind::Mysql, &["3.21", "3.22"], &sample_entry());
        assert_eq!(f.release(), "3.22");
        assert_eq!(f.app(), AppKind::Mysql);
        assert_eq!(f.filed(), YearMonth::new(1999, 3));
        assert_eq!(f.slug(), "test-edn-01");
    }

    #[test]
    fn class_derives_from_trigger() {
        let f = CuratedFault::from_entry(AppKind::Mysql, &["a", "b"], &sample_entry());
        assert_eq!(f.class(), FaultClass::EnvDependentNonTransient);
        let mut e = sample_entry();
        e.trigger = None;
        let f = CuratedFault::from_entry(AppKind::Mysql, &["a", "b"], &e);
        assert_eq!(f.class(), FaultClass::EnvironmentIndependent);
    }

    #[test]
    fn trigger_reps_follow_the_condition() {
        let mut e = sample_entry();
        e.trigger = Some(ConditionKind::ResourceLeak);
        let f = CuratedFault::from_entry(AppKind::Apache, &["a", "b"], &e);
        assert_eq!(f.trigger_reps(), 3, "leaks need repetition to drain the pool");
        assert_eq!(
            CuratedFault::from_entry(AppKind::Apache, &["a", "b"], &sample_entry()).trigger_reps(),
            1
        );
        e.trigger = None;
        let f = CuratedFault::from_entry(AppKind::Apache, &["a", "b"], &e);
        assert_eq!(f.trigger_reps(), 1);
    }

    #[test]
    fn as_classified_copies_metadata() {
        let f = CuratedFault::from_entry(AppKind::Apache, &["1.2", "1.3"], &sample_entry());
        let c = f.as_classified();
        assert_eq!(c.app, AppKind::Apache);
        assert_eq!(c.class, FaultClass::EnvDependentNonTransient);
        assert_eq!(c.release, "1.3");
        assert_eq!(c.release_idx, 1);
    }

    #[test]
    fn synthesized_report_classifies_back_to_corpus_class() {
        use faultstudy_core::classify::Classifier;
        let f = CuratedFault::from_entry(AppKind::Mysql, &["a", "b"], &sample_entry());
        let verdict = Classifier::default().classify_report(&f.report(1));
        assert_eq!(verdict.class, f.class());
    }

    #[test]
    fn ei_report_carries_deterministic_cue() {
        let mut e = sample_entry();
        e.trigger = None;
        e.detail = "crashes parsing the request.";
        let f = CuratedFault::from_entry(AppKind::Apache, &["a", "b"], &e);
        let r = f.report(2);
        assert!(r.how_to_repeat.contains("every time"));
        assert!(r.passes_selection());
    }
}
