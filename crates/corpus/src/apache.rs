//! The 50 Apache faults of Table 1: 36 environment-independent, 7
//! environment-dependent-nontransient, 7 environment-dependent-transient.
//!
//! The 14 environment-dependent entries are the paper's own trigger
//! descriptions (§5.1), verbatim in spirit. The paper names five of the 36
//! environment-independent faults (`apache-ei-01` … `apache-ei-05`); the
//! remainder are reconstructed as plausible deterministic Apache bugs of
//! the era, which is the documented substitution in `DESIGN.md` — the
//! study's numbers depend only on the counts and the release distribution,
//! both of which match the paper exactly.

use crate::fault::Entry;
use faultstudy_env::condition::ConditionKind as C;

/// Apache's releases in study order (drives Figure 1's x-axis).
pub(crate) const RELEASES: &[&str] = &["1.2.4", "1.3.0", "1.3.4", "1.3.9"];

/// All 50 Apache entries.
pub(crate) const ENTRIES: &[Entry] = &[
    // ------------------------- release 0: 1.2.4 -------------------------
    Entry { slug: "apache-ei-01", title: "dies with a segfault when the submitted URL is very long", detail: "Overflow in the hash calculation when the URL exceeds the table width.", trigger: None, release_idx: 0, filed: (1998, 2) },
    Entry { slug: "apache-ei-02", title: "SIGHUP kills apache on Solaris and Unixware", detail: "A HUP signal should gracefully restart the server but instead terminates it on these platforms.", trigger: None, release_idx: 0, filed: (1998, 3) },
    Entry { slug: "apache-ei-03", title: "dumps core on Linux/PPC if handed a nonexistent URL", detail: "ap_log_rerror() uses a va_list variable twice without an intervening va_end/va_start combination.", trigger: None, release_idx: 0, filed: (1998, 3) },
    Entry { slug: "apache-ei-04", title: "crashes when directory listing is on and the directory has zero entries", detail: "The palloc() call used in index_directory() does not handle size zero properly.", trigger: None, release_idx: 0, filed: (1998, 4) },
    Entry { slug: "apache-edn-01", title: "server degrades and dies after hours of peak traffic", detail: "High load leads to an unknown resource leak in the server; restarting from a saved image brings the leak back.", trigger: Some(C::ResourceLeak), release_idx: 0, filed: (1998, 4) },
    Entry { slug: "apache-edt-01", title: "requests fail when the name server misbehaves", detail: "A call to the Domain Name Service returns an error; this is likely to change when the DNS server is restarted.", trigger: Some(C::DnsError), release_idx: 0, filed: (1998, 5) },
    // ------------------------- release 1: 1.3.0 -------------------------
    Entry { slug: "apache-ei-05", title: "shared memory usage exceeds 100 MBytes within 5 hours", detail: "When a HUP signal is then sent to rotate logs, the server freezes or dies.", trigger: None, release_idx: 1, filed: (1998, 6) },
    Entry { slug: "apache-ei-06", title: "mod_rewrite segfaults on a rule with an empty substitution pattern", detail: "The substitution expander dereferences the first capture without checking the pattern length.", trigger: None, release_idx: 1, filed: (1998, 6) },
    Entry { slug: "apache-ei-07", title: "proxy module crashes relaying a response with a folded header line", detail: "Continuation lines are joined into a buffer sized for the unfolded header only.", trigger: None, release_idx: 1, filed: (1998, 7) },
    Entry { slug: "apache-ei-08", title: "child segfaults when a CGI script exits before reading its input", detail: "The POST body writer does not expect the pipe to close early.", trigger: None, release_idx: 1, filed: (1998, 7) },
    Entry { slug: "apache-ei-09", title: "htpasswd corrupts the password file when invoked with no arguments", detail: "The usage path truncates the file before the argument check runs.", trigger: None, release_idx: 1, filed: (1998, 8) },
    Entry { slug: "apache-ei-10", title: "mod_include loops forever on a truncated SSI directive", detail: "The directive scanner never advances past an unterminated quote.", trigger: None, release_idx: 1, filed: (1998, 8) },
    Entry { slug: "apache-ei-11", title: "byte-range request for a zero-length resource aborts the child", detail: "Range arithmetic divides by the resource length.", trigger: None, release_idx: 1, filed: (1998, 9) },
    Entry { slug: "apache-edn-02", title: "server stops accepting connections under sustained load", detail: "Failure is due to lack of file descriptors; a truly generic recovery restores the application's descriptors with its state.", trigger: Some(C::FdExhaustion), release_idx: 1, filed: (1998, 9) },
    Entry { slug: "apache-edt-02", title: "server wedges at peak load and never recovers on its own", detail: "Child processes hang during peak load and consume all available slots in the process table.", trigger: Some(C::ProcessTableFull), release_idx: 1, filed: (1998, 10) },
    Entry { slug: "apache-edt-03", title: "aborted page fetch leaves the server in a bad state", detail: "User presses stop on the browser in the midst of a page download; the fault depends on the exact timing of the requested workload.", trigger: Some(C::WorkloadTiming), release_idx: 1, filed: (1998, 10) },
    // ------------------------- release 2: 1.3.4 -------------------------
    Entry { slug: "apache-ei-12", title: "mod_autoindex crashes sorting filenames with 8-bit characters", detail: "The comparison routine indexes a 128-entry collation table with a signed char.", trigger: None, release_idx: 2, filed: (1998, 11) },
    Entry { slug: "apache-ei-13", title: "ErrorDocument pointing at itself sends the server into unbounded recursion", detail: "The internal redirect path has no recursion guard for self-referential error documents.", trigger: None, release_idx: 2, filed: (1998, 11) },
    Entry { slug: "apache-ei-14", title: "crash when a .htaccess file contains a Limit section with no method", detail: "The section parser pops an empty method list.", trigger: None, release_idx: 2, filed: (1998, 12) },
    Entry { slug: "apache-ei-15", title: "mod_cgi deadlocks on scripts emitting large diagnostics", detail: "stderr is drained only after stdout closes, so a chatty script fills the pipe and blocks.", trigger: None, release_idx: 2, filed: (1998, 12) },
    Entry { slug: "apache-ei-16", title: "chunked request with a zero-size trailing chunk aborts the connection handler", detail: "The trailer reader treats the terminating chunk as a protocol error and calls abort().", trigger: None, release_idx: 2, filed: (1999, 1) },
    Entry { slug: "apache-ei-17", title: "mod_negotiation dereferences a null map entry for an empty variant list", detail: "A type map with headers but no variants yields a best-match of NULL.", trigger: None, release_idx: 2, filed: (1999, 1) },
    Entry { slug: "apache-ei-18", title: "dumps core parsing a Host header containing a colon but no value", detail: "The port substring is handed to atoi() with a length of zero and the result indexes a table.", trigger: None, release_idx: 2, filed: (1999, 2) },
    Entry { slug: "apache-ei-19", title: "keepalive counter wraps after 32768 requests on one connection", detail: "The per-connection counter is a signed short; wrapping trips a bus error in the scoreboard update.", trigger: None, release_idx: 2, filed: (1999, 2) },
    Entry { slug: "apache-ei-20", title: "mod_status emits a corrupt page when the scoreboard contains an unused slot", detail: "Unused slots carry uninitialized worker records that the formatter prints.", trigger: None, release_idx: 2, filed: (1999, 3) },
    Entry { slug: "apache-ei-21", title: "Allow directive with an IPv6-style address segfaults the parser", detail: "The dotted-quad scanner reads past the colon-separated token.", trigger: None, release_idx: 2, filed: (1999, 3) },
    Entry { slug: "apache-ei-22", title: "mod_mime crashes on an AddType directive with a wildcard extension", detail: "The extension table hashes the literal '*' to an out-of-range bucket.", trigger: None, release_idx: 2, filed: (1999, 4) },
    Entry { slug: "apache-edn-03", title: "temporary objects can no longer be written and requests fail", detail: "The disk cache used by the application gets full and the application cannot store any more temporary files.", trigger: Some(C::DiskCacheFull), release_idx: 2, filed: (1999, 4) },
    Entry { slug: "apache-edn-04", title: "logging stops and the server exits during rotation", detail: "The size of the log file is greater than the maximum allowed file size.", trigger: Some(C::MaxFileSize), release_idx: 2, filed: (1999, 4) },
    Entry { slug: "apache-edt-04", title: "restart fails because the listening sockets cannot be re-acquired", detail: "Hung child processes hang onto required network ports; they will likely be killed during recovery and the ports freed.", trigger: Some(C::PortsHeldByChildren), release_idx: 2, filed: (1999, 4) },
    Entry { slug: "apache-edt-05", title: "lookups stall and requests time out intermittently", detail: "Slow DNS response; the cause will likely be fixed eventually by restarting the name server or fixing the network.", trigger: Some(C::DnsSlow), release_idx: 2, filed: (1999, 4) },
    // ------------------------- release 3: 1.3.9 -------------------------
    Entry { slug: "apache-ei-23", title: "trailing backslash at end of configuration file reads past the buffer", detail: "The line-continuation scanner dereferences one byte beyond the final newline.", trigger: None, release_idx: 3, filed: (1999, 5) },
    Entry { slug: "apache-ei-24", title: "mod_alias applies the wrong mapping when two aliases share a prefix, then aborts", detail: "The match-length bookkeeping underflows for the shorter alias.", trigger: None, release_idx: 3, filed: (1999, 5) },
    Entry { slug: "apache-ei-25", title: "suexec kills valid requests with an assertion failure", detail: "The uid range check inverts its comparison for uids above 2^16.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "apache-ei-26", title: "crash when a request URI consists solely of escaped slashes", detail: "Path collapsing produces an empty segment list that the walker dereferences.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "apache-ei-27", title: "If-Modified-Since header with a two-digit year aborts the date parser", detail: "The RFC 850 branch subtracts 1900 from an already two-digit year and indexes a month table with the result.", trigger: None, release_idx: 3, filed: (1999, 6) },
    Entry { slug: "apache-ei-28", title: "mod_userdir crashes resolving a home directory for an empty user name", detail: "getpwnam() is called with a zero-length name and the NULL result is not checked.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "apache-ei-29", title: "server exits with a bus error when the configured MIME types file is empty", detail: "The first-line parser reads the type token from an empty buffer.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "apache-ei-30", title: "Redirect directive with a status code of 0 crashes the config post-processor", detail: "Status 0 selects the undefined entry of the redirect table.", trigger: None, release_idx: 3, filed: (1999, 7) },
    Entry { slug: "apache-ei-31", title: "mod_log_config corrupts the heap formatting a negative response size", detail: "The %b formatter allocates by digit count computed from an unsigned cast.", trigger: None, release_idx: 3, filed: (1999, 8) },
    Entry { slug: "apache-ei-32", title: "authentication realm string of 256 characters overruns a stack buffer", detail: "The WWW-Authenticate assembler copies the realm into a fixed 256-byte frame including the quotes.", trigger: None, release_idx: 3, filed: (1999, 8) },
    Entry { slug: "apache-ei-33", title: "crash on OPTIONS request for a proxied URL", detail: "The proxy handler assumes a filename-based request record and dereferences a NULL path.", trigger: None, release_idx: 3, filed: (1999, 9) },
    Entry { slug: "apache-ei-34", title: "parent segfaults when MaxClients is lowered below the number of running children", detail: "The reaper indexes the old, larger scoreboard with the new limit.", trigger: None, release_idx: 3, filed: (1999, 9) },
    Entry { slug: "apache-ei-35", title: "mod_env dumps core when PassEnv names an unset variable", detail: "The NULL result of getenv() is handed to the table merger.", trigger: None, release_idx: 3, filed: (1999, 10) },
    Entry { slug: "apache-ei-36", title: "multiline configuration directive continued with a tab aborts startup parsing", detail: "The continuation detector accepts only a space and treats the tab line as a new directive mid-token.", trigger: None, release_idx: 3, filed: (1999, 10) },
    Entry { slug: "apache-edn-05", title: "all writes fail and the server shuts down", detail: "A full file system prevents any further operation until space is manually reclaimed.", trigger: Some(C::FileSystemFull), release_idx: 3, filed: (1999, 8) },
    Entry { slug: "apache-edn-06", title: "connections drop after days of uptime", detail: "An unknown network resource is exhausted in the kernel; only a reboot replenishes it.", trigger: Some(C::NetworkResourceExhausted), release_idx: 3, filed: (1999, 9) },
    Entry { slug: "apache-edn-07", title: "server dies when the laptop's network interface disappears", detail: "Removal of the PCMCIA network card from the computer takes the interface away beneath the listener.", trigger: Some(C::HardwareRemoved), release_idx: 3, filed: (1999, 9) },
    Entry { slug: "apache-edt-06", title: "responses crawl and the server is flagged dead by monitors", detail: "A slow network connection delays every transfer; the network may be fixed by the time the server recovers.", trigger: Some(C::NetworkSlow), release_idx: 3, filed: (1999, 10) },
    Entry { slug: "apache-edt-07", title: "SSL startup blocks and the server fails its readiness check", detail: "Lack of events to generate sufficient random numbers in /dev/random; during recovery more events accumulate.", trigger: Some(C::EntropyExhausted), release_idx: 3, filed: (1999, 10) },
];

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::FaultClass;

    #[test]
    fn counts_match_table_1() {
        let ei = ENTRIES.iter().filter(|e| e.trigger.is_none()).count();
        let edn = ENTRIES
            .iter()
            .filter(|e| {
                e.trigger.is_some_and(|t| {
                    FaultClass::from_condition(Some(t)) == FaultClass::EnvDependentNonTransient
                })
            })
            .count();
        let edt = ENTRIES.len() - ei - edn;
        assert_eq!((ei, edn, edt), (36, 7, 7));
        assert_eq!(ENTRIES.len(), 50);
    }

    #[test]
    fn slugs_unique_and_release_indexes_valid() {
        let mut slugs: Vec<&str> = ENTRIES.iter().map(|e| e.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ENTRIES.len());
        assert!(ENTRIES.iter().all(|e| (e.release_idx as usize) < RELEASES.len()));
    }

    #[test]
    fn release_totals_increase_with_newer_releases() {
        let mut per_release = [0u32; 4];
        for e in ENTRIES {
            per_release[e.release_idx as usize] += 1;
        }
        assert_eq!(per_release, [6, 10, 15, 19], "figure 1 bar totals");
        assert!(per_release.windows(2).all(|w| w[0] < w[1]));
    }
}
