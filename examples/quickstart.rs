//! Quickstart: load the corpus, reproduce Table 1, and classify a fresh
//! bug report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use faultstudy::core::classify::Classifier;
use faultstudy::core::report::BugReport;
use faultstudy::core::taxonomy::{AppKind, Severity};
use faultstudy::corpus::paper_study;
use faultstudy::report::render_table;

fn main() {
    // The paper's study, aggregated from the curated 139-fault corpus.
    let study = paper_study();
    println!("{}", render_table(&study, AppKind::Apache));

    // Classifying a new report uses the same rules the corpus encodes.
    let report = BugReport::builder(AppKind::Mysql, 4242)
        .title("server dies under parallel shutdown")
        .how_to_repeat(
            "hard to reproduce; looks like a race condition between the \
             masking of a signal and its arrival during shutdown",
        )
        .severity(Severity::Critical)
        .build();
    let verdict = Classifier::default().classify_report(&report);
    println!("new report #{} -> {}", report.id, verdict.class);
    println!("  rationale: {}", verdict.rationale);
    println!("  confidence: {}", verdict.confidence);
    println!(
        "  generic recovery expected to survive it: {}",
        verdict.class.generic_recovery_expected()
    );
}
