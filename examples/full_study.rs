//! The entire paper in one run: tables, figures, discussion numbers,
//! funnels, the recovery matrix, and the Lee–Iyer reconciliation.
//!
//! Equivalent to `faultstudy all`; exists as an example so the sequence is
//! also exercised as documentation.
//!
//! ```sh
//! cargo run --release --example full_study
//! ```

use faultstudy::core::taxonomy::AppKind;
use faultstudy::core::timeline::{by_month, by_release, ei_shares, max_deviation, totals_grow};
use faultstudy::corpus::paper_study;
use faultstudy::harness::{paper_scale_funnels, RecoveryMatrix};
use faultstudy::report::{
    render_discussion, render_release_figure, render_table, render_time_figure,
    TandemReconciliation,
};

fn main() {
    let study = paper_study();

    for app in AppKind::ALL {
        println!("{}", render_table(&study, app));
    }

    let fig1 = by_release(&study, AppKind::Apache);
    println!("{}", render_release_figure(&fig1));
    let fig2 = by_month(&study, AppKind::Gnome);
    println!("{}", render_time_figure(&fig2));
    let fig3 = by_release(&study, AppKind::Mysql);
    println!("{}", render_release_figure(&fig3));

    // The two properties the paper reads off the release figures.
    let shares = ei_shares(fig1.buckets.iter().map(|b| b.counts), 3);
    println!(
        "Apache environment-independent share per release deviates by at most {:.1} \
         percentage points (the paper: 'stays about the same').",
        max_deviation(&shares) * 100.0
    );
    let totals: Vec<_> = fig1.buckets.iter().map(|b| b.counts).collect();
    println!("Apache totals grow toward newer releases: {}", totals_grow(&totals));
    println!();

    println!("{}", render_discussion(&study.discussion()));

    for run in paper_scale_funnels(2000) {
        println!("{}", run.outcome);
    }
    println!();

    let matrix = RecoveryMatrix::run(2000);
    println!("{matrix}");

    println!("{}", TandemReconciliation::default());
}
