//! Reproduces the §4 selection funnels on synthetic archives with known
//! ground truth, and measures the selection quality the paper could not.
//!
//! ```sh
//! cargo run --example mine_archives
//! ```

use faultstudy::core::taxonomy::AppKind;
use faultstudy::corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy::harness::paper_scale_funnels;
use faultstudy::mining::{Archive, KeywordQuery, SelectionPipeline};

fn main() {
    println!("== paper-scale funnels (5220 / 500 / 44,000 raw entries) ==");
    for run in paper_scale_funnels(7) {
        println!("{}", run.outcome);
        println!("  {}", run.quality);
    }

    println!();
    println!("== anatomy of the MySQL keyword search ==");
    let q = KeywordQuery::mysql();
    println!("keywords: {:?}", q.keywords());
    let spec = PopulationSpec {
        app: AppKind::Mysql,
        archive_size: 5000,
        max_duplicates_per_fault: 3,
        seed: 11,
    };
    let population = SyntheticPopulation::generate(&spec);
    let matches = population.reports.iter().filter(|r| q.matches(r)).count();
    println!(
        "{} of {} messages match (the paper: 'a few hundred' of 44,000)",
        matches,
        population.reports.len()
    );

    println!();
    println!("== what a differently-tuned pipeline would have found ==");
    // Searching only for "crash" misses race reports that never say it.
    let narrow = SelectionPipeline::with_keywords(Some(KeywordQuery::new(["crash"])));
    let archive = Archive::from_columns(AppKind::Mysql, population.to_columns());
    let narrow_out = narrow.run(&archive);
    let full_out = SelectionPipeline::for_app(AppKind::Mysql).run(&archive);
    println!(
        "keywords ['crash'] select {} unique bugs; the paper's four keywords select {}",
        narrow_out.unique_bugs(),
        full_out.unique_bugs()
    );
}
