//! Process pairs on real OS threads: the mechanism of [Gray86] and why it
//! only helps with Heisenbugs.
//!
//! ```sh
//! cargo run --example process_pair_threads
//! ```

use faultstudy::recovery::thread_pair::{run_pair, Op};

fn main() {
    println!("== fault-free run ==");
    let ok = run_pair(&[Op::Add(1), Op::Add(2), Op::Add(3)]);
    println!("result={:?} failed_over={}", ok.result, ok.failed_over);

    println!();
    println!("== transient fault (Heisenbug): primary dies, backup finishes ==");
    let transient = run_pair(&[Op::Add(10), Op::TransientFault(5), Op::Add(1)]);
    println!(
        "result={:?} failed_over={} primary_completed={}",
        transient.result, transient.failed_over, transient.primary_completed
    );

    println!();
    println!("== deterministic fault (Bohrbug): the pair cannot help ==");
    let poison = run_pair(&[Op::Add(1), Op::PoisonFault, Op::Add(2)]);
    println!(
        "result={:?} failed_over={} — both replicas executed the poison op and died",
        poison.result, poison.failed_over
    );
    println!();
    println!(
        "The study found 72-87% of application faults are deterministic, so this \
     second outcome is the common case — the paper's core argument."
    );
}
