//! Ad-hoc breakdown of per-sample campaign cost (dev aid, not a bench).

use faultstudy::corpus::full_corpus;
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::experiment::{run_fault_experiment, StrategyKind};
use std::time::Instant;

fn main() {
    snapshot_and_handle_cost();
    let corpus = full_corpus();
    let n = 20_000u32;

    let start = Instant::now();
    let report = CampaignReport::run_with(
        CampaignSpec { samples: n, seed: 2000 },
        faultstudy::exec::ParallelSpec::SEQUENTIAL,
    );
    let total = start.elapsed();
    println!(
        "campaign {} samples: {:?} ({:.1}/s), cells {}",
        n,
        total,
        f64::from(n) / total.as_secs_f64(),
        report.cells.len()
    );

    // Single experiment repeated: per-strategy cost.
    for strategy in StrategyKind::ALL {
        let fault = &corpus[0];
        let reps = 5000;
        let start = Instant::now();
        for i in 0..reps {
            std::hint::black_box(run_fault_experiment(fault, strategy, i));
        }
        let el = start.elapsed();
        println!(
            "experiment {:<14} {:>8.2} us/op",
            strategy.name(),
            el.as_secs_f64() * 1e6 / reps as f64
        );
    }

    // Full corpus sweep: which faults are expensive?
    let start = Instant::now();
    for strategy in StrategyKind::ALL {
        for fault in &corpus {
            std::hint::black_box(run_fault_experiment(fault, strategy, 5));
        }
    }
    let el = start.elapsed();
    println!(
        "corpus sweep: {:>8.2} us/experiment over {} experiments",
        el.as_secs_f64() * 1e6 / (corpus.len() * StrategyKind::ALL.len()) as f64,
        corpus.len() * StrategyKind::ALL.len()
    );
    let mut worst: Vec<(f64, String)> = corpus
        .iter()
        .map(|fault| {
            let start = Instant::now();
            for strategy in StrategyKind::ALL {
                std::hint::black_box(run_fault_experiment(fault, strategy, 5));
            }
            (start.elapsed().as_secs_f64() * 1e6 / 7.0, fault.slug().to_owned())
        })
        .collect();
    worst.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (us, slug) in worst.iter().take(12) {
        println!("  {slug:<16} {us:>8.2} us/experiment");
    }

    // Worst fault, per strategy.
    let wide = corpus.iter().find(|f| f.slug() == "mysql-ei-24").unwrap();
    let workload = faultstudy::harness::experiment::build_workload(wide);
    for strategy in StrategyKind::ALL {
        let reps = 2000;
        let start = Instant::now();
        for i in 0..reps {
            std::hint::black_box(faultstudy::harness::experiment::run_prepared_experiment(
                wide, strategy, i, &workload,
            ));
        }
        let el = start.elapsed();
        println!(
            "mysql-ei-24 {:<14} {:>8.2} us/op",
            strategy.name(),
            el.as_secs_f64() * 1e6 / reps as f64
        );
    }

    // The wide trigger's handle cost, isolated.
    {
        let mut env = faultstudy::env::Environment::builder().seed(1).build();
        let mut db =
            faultstudy::apps::spawn_app(faultstudy::core::taxonomy::AppKind::Mysql, &mut env);
        db.inject("mysql-ei-24", &mut env).unwrap();
        let trigger = db.trigger_request("mysql-ei-24").unwrap();
        let reps = 20_000u32;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(db.handle(&trigger, &mut env)).ok();
        }
        println!(
            "wide handle: {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
        let body = trigger.body.trim();
        let col_list = body.split_once('(').unwrap().1.trim_end_matches(')');
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                col_list.split(',').map(str::trim).filter(|c| !c.is_empty()).count(),
            );
        }
        println!(
            "col count  : {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(body.bytes().filter(|&b| b == b'(').count());
        }
        println!(
            "paren scan : {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
    }

    // MiniDb snapshot/restore with a fixture table loaded.
    {
        let mut env = faultstudy::env::Environment::builder().seed(1).build();
        let mut db =
            faultstudy::apps::spawn_app(faultstudy::core::taxonomy::AppKind::Mysql, &mut env);
        db.inject("mysql-ei-01", &mut env).unwrap();
        let reps = 100_000u32;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(db.snapshot());
        }
        println!(
            "db snapshot: {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
        let snap = db.snapshot();
        let start = Instant::now();
        for _ in 0..reps {
            db.restore(&snap);
        }
        println!(
            "db restore : {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
        let req = db.benign_request();
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(db.handle(&req, &mut env)).ok();
        }
        println!(
            "db handle  : {:>8.3} us/op",
            start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
        );
    }

    // Environment construction alone.
    let reps = 50_000u32;
    let start = Instant::now();
    for i in 0..reps {
        let env = faultstudy::env::Environment::builder()
            .seed(u64::from(i))
            .fd_limit(16)
            .proc_slots(8)
            .fs_capacity(256 * 1024)
            .max_file_size(64 * 1024)
            .build();
        std::hint::black_box(&env);
    }
    println!("env build: {:>8.2} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));

    // Env + app spawn.
    let start = Instant::now();
    for i in 0..reps {
        let mut env = faultstudy::env::Environment::builder()
            .seed(u64::from(i))
            .fd_limit(16)
            .proc_slots(8)
            .fs_capacity(256 * 1024)
            .max_file_size(64 * 1024)
            .build();
        let app =
            faultstudy::apps::spawn_app(faultstudy::core::taxonomy::AppKind::Apache, &mut env);
        std::hint::black_box(&app);
    }
    println!("env+spawn: {:>8.2} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));
}

#[allow(dead_code)]
fn extra() {}

#[allow(dead_code)]
fn snapshot_and_handle_cost() {
    let reps = 200_000u32;
    let mut env = faultstudy::env::Environment::builder().seed(1).build();
    let mut app =
        faultstudy::apps::spawn_app(faultstudy::core::taxonomy::AppKind::Apache, &mut env);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(app.snapshot());
    }
    println!("snapshot : {:>8.3} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));

    let snap = app.snapshot();
    let start = Instant::now();
    for _ in 0..reps {
        app.restore(&snap);
    }
    println!("restore  : {:>8.3} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));

    let req = app.benign_request();
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(app.handle(&req, &mut env)).ok();
    }
    println!("handle   : {:>8.3} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(req.clone());
    }
    println!("req clone: {:>8.3} us/op", start.elapsed().as_secs_f64() * 1e6 / f64::from(reps));
}
