//! The paper's proposed end-to-end check (§5.4, §8): inject each studied
//! fault into its simulated application and measure whether each recovery
//! strategy survives it.
//!
//! ```sh
//! cargo run --example recovery_experiment          # three showcase faults
//! cargo run --release --example recovery_experiment -- --full   # all 139
//! ```

use faultstudy::core::taxonomy::FaultClass;
use faultstudy::corpus::find;
use faultstudy::harness::experiment::{run_fault_experiment, StrategyKind};
use faultstudy::harness::RecoveryMatrix;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    if full {
        let matrix = RecoveryMatrix::run(2000);
        println!("{matrix}");
        let restart = matrix.overall(StrategyKind::Restart);
        println!(
            "Generic restart survived {:.0}% of all faults — the paper predicted \
             only the 5-14% transient fraction would be recoverable.",
            restart.rate() * 100.0
        );
        return;
    }

    // One fault per class, under every strategy.
    let showcase = [
        ("mysql-ei-03", "COUNT(*) on an empty table (deterministic)"),
        ("apache-edn-01", "resource leak under high load (nontransient)"),
        ("apache-edt-02", "hung children fill the process table (transient)"),
    ];
    for (slug, describe) in showcase {
        let fault = find(slug).expect("showcase slug exists");
        println!("{slug}: {describe}");
        println!("  class: {}", fault.class());
        for strategy in StrategyKind::ALL {
            let out = run_fault_experiment(&fault, strategy, 2000);
            println!(
                "  {:<14} survived={} failures={} recoveries={}",
                strategy.name(),
                out.survived,
                out.failures,
                out.recoveries
            );
        }
        println!();
    }
    println!("Run with --full for the complete 139-fault matrix.");
    let _ = FaultClass::ALL;
}
