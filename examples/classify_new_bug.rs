//! Classify an arbitrary bug-report text from the command line.
//!
//! ```sh
//! cargo run --example classify_new_bug -- "server crashes whenever the \
//!     file system is full"
//! cargo run --example classify_new_bug      # runs built-in samples
//! ```

use faultstudy::core::classify::Classifier;
use faultstudy::core::evidence::Evidence;
use faultstudy::core::taxonomy::FaultClass;

const SAMPLES: &[&str] = &[
    "the server dies with a segfault every time a long URL is submitted",
    "intermittent crash; looks like a race condition between two worker threads",
    "all writes fail once the file system is full; still broken after restart",
    "unknown failure of the applet which works on a retry",
    "sometimes the daemon wedges under load, cannot reproduce on the dev box",
];

fn classify(text: &str) {
    let evidence = Evidence::from_text(text);
    let verdict = Classifier::default().classify_evidence(&evidence);
    println!("report: {text}");
    println!("  class:      {}", verdict.class);
    println!("  rationale:  {}", verdict.rationale);
    println!("  confidence: {}", verdict.confidence);
    if !verdict.conditions.is_empty() {
        let slugs: Vec<&str> = verdict.conditions.iter().map(|c| c.slug()).collect();
        println!("  conditions: {}", slugs.join(", "));
    }
    let prognosis = match verdict.class {
        FaultClass::EnvironmentIndependent => {
            "deterministic: prevent it (testing, tools); recovery cannot help"
        }
        FaultClass::EnvDependentNonTransient => {
            "the condition persists on retry: needs application-specific recovery \
             or resource management"
        }
        FaultClass::EnvDependentTransient => {
            "a Heisenbug: rollback-and-retry style generic recovery should survive it"
        }
    };
    println!("  prognosis:  {prognosis}");
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for sample in SAMPLES {
            classify(sample);
        }
    } else {
        classify(&args.join(" "));
    }
}
