#!/usr/bin/env sh
# Regenerates BENCH_inject.json (injection-campaign determinism at 1/2/8
# threads + supervisor overhead with injection disabled, after asserting
# byte-identity and that inert hardening reproduces the bare loop).
# Run from the repo root:
#
#   sh scripts/bench_inject.sh
#
# or via make: `make bench-inject`. CI smoke-tests a 1-repetition run with
# BENCH_INJECT_REPS=1 BENCH_INJECT_ROUNDS=2 and a scratch output path.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_inject -- BENCH_inject.json
