#!/usr/bin/env sh
# Updates BENCH_micro.json (simulated requests/sec of the microreboot
# campaign at 1..N worker threads, plus the microreboot-vs-restart TTR
# ratio). The file's trajectory is appended to, not overwritten: each run
# preserves the prior `trajectory` entries and adds its own 1-thread rate
# and TTR ratio, so the file accumulates both histories across PRs.
# Before any timing the bench asserts that the micro report, its
# instrumented metrics registry, and the rendered comparison table are
# byte-identical at 1/2/4 threads and across chunk sizes, and aborts on
# violation. Run from the repo root:
#
#   sh scripts/bench_micro.sh
#
# or via make: `make bench-micro`. Override the campaign size with
# BENCH_MICRO_REQUESTS (default 600,000).
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_micro -- BENCH_micro.json
