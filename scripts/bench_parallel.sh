#!/usr/bin/env sh
# Regenerates BENCH_parallel.json (campaign samples/sec and mining
# reports/sec at 1..N worker threads). Run from the repo root:
#
#   sh scripts/bench_parallel.sh
#
# or via make: `make bench-parallel`.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_parallel -- BENCH_parallel.json
