#!/usr/bin/env sh
# Updates BENCH_parallel.json (campaign samples/sec and mining
# reports/sec at 1..N worker threads). The file's samples/sec trajectory
# is appended to, not overwritten: each run preserves the prior
# `trajectory` entries and adds its own 1-thread rate, so the file
# accumulates the throughput history across PRs. The bench aborts if the
# streaming campaign fold is not byte-identical to the materialized
# reference, or if oversubscribed thread counts regress below half the
# 1-thread rate. Run from the repo root:
#
#   sh scripts/bench_parallel.sh
#
# or via make: `make bench-parallel`.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_parallel -- BENCH_parallel.json
