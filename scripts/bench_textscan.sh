#!/usr/bin/env sh
# Regenerates BENCH_textscan.json (naive vs automaton text-scan
# reports/sec over the 44k-report MySQL archive at one thread). Run from
# the repo root:
#
#   sh scripts/bench_textscan.sh
#
# or via make: `make bench-textscan`.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_textscan -- BENCH_textscan.json
