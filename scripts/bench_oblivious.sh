#!/usr/bin/env sh
# Updates BENCH_oblivious.json (simulated requests/sec of the
# oblivious-recovery campaign at 1..N worker threads, plus the EI rescue
# ratio — the fraction of the restart baseline's environment-independent
# drops that the discard mode answers instead — and the oracle-violation
# cost the manufactured mode pays for the same rescue). The file's
# trajectory is appended to, not overwritten: each run preserves the
# prior `trajectory` entries and adds its own 1-thread rate and rescue
# ratio, so the file accumulates both histories across PRs. Before any
# timing the bench asserts that the oblivious report, its instrumented
# metrics registry, and the rendered cost table are byte-identical at
# 1/2/4 threads and across chunk sizes, and aborts on violation. Run
# from the repo root:
#
#   sh scripts/bench_oblivious.sh
#
# or via make: `make bench-oblivious`. Override the campaign size with
# BENCH_OBLIVIOUS_REQUESTS (default 600,000).
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_oblivious -- BENCH_oblivious.json
