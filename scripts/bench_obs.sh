#!/usr/bin/env sh
# Regenerates BENCH_obs.json (observability overhead: instrumented vs
# plain campaign, after asserting byte-identity and thread invariance).
# Run from the repo root:
#
#   sh scripts/bench_obs.sh
#
# or via make: `make bench-obs`. CI smoke-tests a 1-repetition run with
# BENCH_OBS_REPS=1 BENCH_OBS_SAMPLES=60 and a scratch output path.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_obs -- BENCH_obs.json
