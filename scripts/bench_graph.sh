#!/usr/bin/env sh
# Updates BENCH_graph.json (simulated requests/sec of the graph campaign
# at 1..N worker threads, plus the channel-vs-process TTR ratio on sticky
# wedges and the peak downstream-amplification ratio). The file's
# trajectory is appended to, not overwritten: each run preserves the
# prior `trajectory` entries and adds its own 1-thread rate and ratios,
# so the file accumulates the histories across PRs. Before any timing the
# bench asserts that the graph report, its instrumented metrics registry,
# and the rendered campaign table are byte-identical at 1/2/4 threads and
# across chunk sizes, and aborts on violation. Run from the repo root:
#
#   sh scripts/bench_graph.sh
#
# or via make: `make bench-graph`. Override the campaign size with
# BENCH_GRAPH_REQUESTS (default 600,000).
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_graph -- BENCH_graph.json
