#!/usr/bin/env sh
# Updates BENCH_traffic.json (simulated requests/sec of the open-loop
# traffic campaign at 1..N worker threads). The file's requests/sec
# trajectory is appended to, not overwritten: each run preserves the
# prior `trajectory` entries and adds its own 1-thread rate, so the file
# accumulates the throughput history across PRs. Before any timing the
# bench asserts that the traffic report, its instrumented metrics
# registry, and the rendered SLO table are byte-identical at 1/2/4
# threads and across chunk sizes, and aborts on violation. Run from the
# repo root:
#
#   sh scripts/bench_traffic.sh
#
# or via make: `make bench-traffic`. Override the campaign size with
# BENCH_TRAFFIC_REQUESTS (default 1,000,000).
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p faultstudy-bench --bin bench_traffic -- BENCH_traffic.json
