//! The graph campaign's determinism and wire-level class contracts,
//! pinned end to end.
//!
//! Determinism first: the campaign is a pure function of its spec —
//! report, merged metrics registry, and every rendered table are
//! byte-identical at any thread count and chunk size. Then the two
//! acceptance pins of the distributed fault plane: (1) on sticky
//! (nontransient) channel wedges at the full retry budget, per-channel
//! recovery loses zero requests and strictly beats process supervision
//! on median time-to-recovery; (2) at least one retry policy amplifies
//! downstream load — the db tier serves measurably more requests than
//! the client chains first demanded.

use faultstudy::core::taxonomy::FaultClass;
use faultstudy::exec::ParallelSpec;
use faultstudy::graph::PlaneKind;
use faultstudy::harness::graph::{GraphReport, GraphSpec, GRAPH_BUDGETS};
use faultstudy::harness::RecoveryMatrix;
use faultstudy::traffic::ArrivalKind;

fn contract_spec(seed: u64) -> GraphSpec {
    // 7200 / 72 units = 100 requests per unit, exactly.
    GraphSpec { seed, requests: 7_200, arrival: ArrivalKind::Poisson }
}

/// The campaign is a pure function of its spec: report, merged registry,
/// rendered campaign table, and the matrix's distributed comparison are
/// all byte-identical at any thread count and chunk size.
#[test]
fn campaign_is_byte_identical_across_threads_and_chunks() {
    let spec = contract_spec(5);
    let (reference, ref_registry) = GraphReport::run_instrumented(spec, ParallelSpec::threads(1));
    let ref_rendered = reference.to_string();
    let matrix = RecoveryMatrix::run(5);
    let ref_matrix_table = matrix.render_with_graph(&reference);
    let specs = [
        ParallelSpec::threads(2),
        ParallelSpec::threads(4),
        ParallelSpec::threads(2).with_chunk(7),
        ParallelSpec::threads(4).with_chunk(1),
    ];
    for parallel in specs {
        let (report, registry) = GraphReport::run_instrumented(spec, parallel);
        assert_eq!(report, reference, "report diverged at {parallel:?}");
        assert_eq!(registry, ref_registry, "registry diverged at {parallel:?}");
        assert_eq!(report.to_string(), ref_rendered, "rendered bytes diverged at {parallel:?}");
        assert_eq!(
            matrix.render_with_graph(&report),
            ref_matrix_table,
            "matrix table diverged at {parallel:?}"
        );
    }
}

/// The plain runner and the instrumented runner drive the very same
/// simulation: the report is unchanged and its ledgers reconcile with
/// the registry's per-cell counters.
#[test]
fn instrumentation_does_not_perturb_the_campaign() {
    let spec = contract_spec(3);
    let plain = GraphReport::run_with(spec, ParallelSpec::threads(2));
    let (instrumented, registry) = GraphReport::run_instrumented(spec, ParallelSpec::threads(2));
    assert_eq!(instrumented, plain);
    let mut offered = 0;
    for class in FaultClass::ALL {
        for plane in PlaneKind::ALL {
            for budget in GRAPH_BUDGETS {
                let label = format!("{}/{}/b{}", class.short(), plane.name(), budget);
                offered += registry.counter("graph.offered", &label);
            }
        }
    }
    assert_eq!(offered, plain.totals().offered);
}

/// Acceptance pin 1 — on sticky (nontransient) wedges at the full retry
/// budget, per-channel recovery must lose nothing and strictly beat
/// process supervision on median time-to-recovery: draining a channel
/// and rebooting one endpoint is orders cheaper than restarting nodes.
#[test]
fn channel_recovery_beats_process_supervision_on_sticky_wedges() {
    let report = GraphReport::run(contract_spec(2000));
    let full = *GRAPH_BUDGETS.last().unwrap();
    let edn = FaultClass::EnvDependentNonTransient;
    let channel = report.class_graph(edn, PlaneKind::Channel, full);
    let process = report.class_graph(edn, PlaneKind::Process, full);
    assert_eq!(channel.base.dropped, 0, "per-channel recovery must not lose a request");
    assert!(channel.ttr.count() > 0 && process.ttr.count() > 0, "both planes recovered chains");
    let (ch_p50, pr_p50) = (channel.ttr.p50().unwrap(), process.ttr.p50().unwrap());
    assert!(ch_p50 < pr_p50, "channel ttr p50 {ch_p50}ns must strictly beat process {pr_p50}ns");
    // The whole report agrees: the contract checker finds nothing.
    assert_eq!(report.anomalies(), Vec::<String>::new());
}

/// Acceptance pin 2 — retries are not free: at the full budget at least
/// one fault kind re-drives the db tier past what the client chains
/// first demanded, and the measured amplification ratio exceeds one.
#[test]
fn some_retry_policy_amplifies_downstream_load() {
    let report = GraphReport::run(contract_spec(2000));
    let full = *GRAPH_BUDGETS.last().unwrap();
    let amp = report.max_amplification(full);
    assert!(amp > 1.0, "max amplification {amp} must exceed 1");
    // And at zero budget there is nothing to amplify with: every cell's
    // db tier sees exactly the first-demand load.
    assert!((report.max_amplification(0) - 1.0).abs() < f64::EPSILON);
}

/// Defects (environment-independent kinds) defeat both planes: no
/// channel hygiene or node restart recovers a deterministic bug, so both
/// planes drop requests and availability stays below 100%.
#[test]
fn defects_defeat_both_recovery_planes() {
    let report = GraphReport::run(contract_spec(2000));
    let full = *GRAPH_BUDGETS.last().unwrap();
    for plane in PlaneKind::ALL {
        let ei = report.class_stats(FaultClass::EnvironmentIndependent, plane, full);
        assert!(ei.dropped > 0, "{}: defects must drop requests", plane.name());
        assert!(ei.availability() < 1.0, "{}: availability must stay degraded", plane.name());
    }
}
