//! The microreboot contract: what crash-only component recovery must and
//! must not buy over whole-process restart, pinned as a differential
//! suite over the same open-loop traffic.
//!
//! The pins mirror the paper's §2 argument from the other side. Generic
//! recovery must preserve all application state, so state poisoned by the
//! application itself (the checkpointed allocation leak) defeats it
//! forever; a crash-only partition is allowed to discard volatile state
//! and recovers. Conversely, application knowledge buys nothing against
//! environment-independent defects — the bug re-triggers no matter which
//! component reboots — and durable-hard components may never be crashed,
//! so their failures must escalate to exactly the whole-process restart.

use faultstudy::apps::spawn_app;
use faultstudy::core::taxonomy::{AppKind, FaultClass};
use faultstudy::env::Environment;
use faultstudy::exec::ParallelSpec;
use faultstudy::harness::micro::{MicroReport, MicroSpec, RecoveryMode};
use faultstudy::recovery::{run_workload, MicroReboot};
use faultstudy::traffic::ArrivalKind;

fn contract_spec(seed: u64) -> MicroSpec {
    // 6000 / 60 units = 100 requests per unit, exactly.
    MicroSpec { seed, requests: 6_000, arrival: ArrivalKind::Poisson }
}

/// The headline differential: state poisoned *inside* the checkpoint
/// (MiniWeb's allocation leak) defeats generic restart forever — the
/// restore faithfully brings the poison back — while the crash-only
/// worker pool discards it and loses not a single request.
#[test]
fn checkpointed_state_leak_defeats_restart_and_survives_microreboot() {
    let report = MicroReport::run(contract_spec(2000));
    let restart = report.cell("state-leak", RecoveryMode::Restart, AppKind::Apache).unwrap();
    let micro = report.cell("state-leak", RecoveryMode::Micro, AppKind::Apache).unwrap();
    assert!(restart.stats.dropped > 0, "restart must keep dropping the leak trigger");
    assert_eq!(micro.stats.dropped, 0, "microreboot must not lose a single request");
    assert!(
        micro.stats.availability() > restart.stats.availability(),
        "micro {} !> restart {}",
        micro.stats.availability(),
        restart.stats.availability()
    );
    // The recovery itself is cheap: the worker-pool reboot resolves each
    // leak crash in one component-scoped attempt.
    assert!(micro.stats.recoveries < restart.stats.recoveries);
}

/// For transient environment faults on volatile components, the
/// component-scoped time-to-recovery sits well below the process-restart
/// TTR: a worker-pool reboot charges tens of milliseconds where
/// `on_generic_recovery` charges a full second.
#[test]
fn volatile_transient_ttr_is_strictly_below_process_restart() {
    let report = MicroReport::run(contract_spec(2000));
    let class = FaultClass::EnvDependentTransient;
    let restart = report.class_ttr(class, RecoveryMode::Restart);
    let micro = report.class_ttr(class, RecoveryMode::Micro);
    assert!(restart.count() > 0, "restart must recover transient faults");
    assert!(micro.count() > 0, "microreboot must recover transient faults");
    let (micro_p50, restart_p50) = (micro.p50().unwrap(), restart.p50().unwrap());
    assert!(
        micro_p50 * 3 < restart_p50,
        "median microreboot TTR {micro_p50}ns not well below restart {restart_p50}ns"
    );
    // Fewer recovery stalls over the SLO too, not just a faster median.
    let micro_stats = report.class_stats(class, RecoveryMode::Micro);
    let restart_stats = report.class_stats(class, RecoveryMode::Restart);
    assert!(micro_stats.slo_violations < restart_stats.slo_violations);
    assert_eq!(micro_stats.dropped, 0, "transient faults must not lose requests under micro");
}

/// Environment-independent defects are beyond both modes: the bug lives
/// in the code path, so it re-triggers after any reboot of any scope.
/// Neither mode may bring the drop count to zero.
#[test]
fn ei_control_faults_never_survive_either_mode() {
    let report = MicroReport::run(contract_spec(2000));
    for mode in RecoveryMode::ALL {
        let cell = report.cell("ei-control", mode, AppKind::Apache).unwrap();
        assert!(
            cell.stats.dropped > 0,
            "{}: the EI control trigger must keep dropping requests",
            mode.name()
        );
        let class = report.class_stats(FaultClass::EnvironmentIndependent, mode);
        assert!(class.dropped > 0, "{}: EI drops at class scope too", mode.name());
    }
}

/// A fault routed to a durable-hard component (MiniDe's editor buffer,
/// which owns the session identity) must never be crash-rebooted: the
/// restart tree escalates straight to the whole-process rung, and since
/// that rung is exactly the generic restore-everything restart, the
/// hostname-identity fault stays unrecovered — no scoped reboot is ever
/// attempted.
#[test]
fn durable_hard_faults_escalate_to_full_process_reboot() {
    let mut env = Environment::builder().seed(11).metrics(true).build();
    let mut app = spawn_app(AppKind::Gnome, &mut env);
    app.inject("gnome-edn-01", &mut env).expect("injectable");
    let workload = vec![
        app.benign_request(),
        app.benign_request(),
        app.trigger_request("gnome-edn-01").expect("trigger"),
    ];
    let mut strategy = MicroReboot::new(8, 7);
    let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
    assert!(!run.survived, "the preserved boot identity must keep failing");
    assert_eq!(run.completed, 2, "everything before the trigger was served");
    assert_eq!(run.failures, 9, "initial failure plus the full retry budget");

    let registry = env.metrics.take().expect("metrics were enabled");
    assert!(
        registry.counter("micro.reboot.process", "de-editor-buffer") > 0,
        "durable-hard failures must take the whole-process rung"
    );
    let scoped: u64 = registry
        .counters()
        .filter(|(k, _)| k.starts_with("micro.reboot{") || k.starts_with("micro.reboot.subtree{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(scoped, 0, "no component- or subtree-scoped reboot may be attempted");
    assert_eq!(registry.counter("micro.lost", "de-editor-buffer"), 1, "the trigger was lost");
}

/// The campaign is a pure function of its spec: report, merged registry,
/// and rendered bytes are identical at any thread count and chunk size.
#[test]
fn campaign_is_byte_identical_across_threads_and_chunks() {
    let spec = contract_spec(5);
    let (reference, ref_registry) = MicroReport::run_instrumented(spec, ParallelSpec::threads(1));
    let ref_rendered = reference.to_string();
    let specs = [
        ParallelSpec::threads(2),
        ParallelSpec::threads(4),
        ParallelSpec::threads(2).with_chunk(7),
        ParallelSpec::threads(4).with_chunk(1),
    ];
    for parallel in specs {
        let (report, registry) = MicroReport::run_instrumented(spec, parallel);
        assert_eq!(report, reference, "report diverged at {parallel:?}");
        assert_eq!(registry, ref_registry, "registry diverged at {parallel:?}");
        assert_eq!(report.to_string(), ref_rendered, "rendered bytes diverged at {parallel:?}");
    }
}
