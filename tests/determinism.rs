//! Cross-component determinism: every experiment artifact is a pure
//! function of its seed. This is the property that makes the reproduction
//! auditable — any reported number can be regenerated bit-for-bit.

use faultstudy::core::taxonomy::AppKind;
use faultstudy::corpus::{full_corpus, paper_study, PopulationSpec, SyntheticPopulation};
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::experiment::{run_fault_experiment, StrategyKind};
use faultstudy::harness::{experiments_markdown, paper_scale_funnels, RecoveryMatrix};

#[test]
fn corpus_and_study_are_constant() {
    assert_eq!(full_corpus(), full_corpus());
    assert_eq!(paper_study(), paper_study());
}

#[test]
fn populations_funnels_matrices_campaigns_reports_are_seed_pure() {
    let spec = PopulationSpec {
        app: AppKind::Gnome,
        archive_size: 250,
        max_duplicates_per_fault: 1,
        seed: 77,
    };
    assert_eq!(SyntheticPopulation::generate(&spec), SyntheticPopulation::generate(&spec));
    assert_eq!(paper_scale_funnels(5), paper_scale_funnels(5));
    assert_eq!(
        RecoveryMatrix::run_strategies(5, &[StrategyKind::Restart]),
        RecoveryMatrix::run_strategies(5, &[StrategyKind::Restart])
    );
    let cspec = CampaignSpec { samples: 40, seed: 5 };
    assert_eq!(CampaignReport::run(cspec), CampaignReport::run(cspec));
    assert_eq!(experiments_markdown(5), experiments_markdown(5));
}

#[test]
fn every_fault_strategy_pair_is_reproducible() {
    // A sweeping pointwise check across the full corpus for one strategy.
    for fault in full_corpus() {
        let a = run_fault_experiment(&fault, StrategyKind::Progressive, 31);
        let b = run_fault_experiment(&fault, StrategyKind::Progressive, 31);
        assert_eq!(a, b, "{}", fault.slug());
    }
}

#[test]
fn seeds_change_stochastic_outcomes_but_not_guarantees() {
    // Across seeds, race-fault outcomes may differ per attempt, but the
    // class-level guarantees hold; spot-check a race under a weak budget.
    let fault = faultstudy::corpus::find("gnome-edt-03").expect("exists");
    let outcomes: Vec<bool> = (0..24)
        .map(|seed| run_fault_experiment(&fault, StrategyKind::Restart, seed).survived)
        .collect();
    // With 3 retries and fresh interleavings the race usually clears;
    // at least some seeds must survive.
    assert!(outcomes.iter().any(|s| *s), "no seed survived the race");
    // And regardless of seed, the EI guarantee stands.
    let ei = faultstudy::corpus::find("gnome-ei-22").expect("exists");
    for seed in 0..8 {
        assert!(!run_fault_experiment(&ei, StrategyKind::Progressive, seed).survived);
    }
}
