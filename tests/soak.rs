//! Soak tests: long mixed workloads with mid-stream fault injection, the
//! closest the suite comes to the paper's production setting.

use faultstudy::apps::spawn_app;
use faultstudy::core::taxonomy::{AppKind, FaultClass};
use faultstudy::env::Environment;
use faultstudy::exec::ParallelSpec;
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::experiment::StrategyKind;
use faultstudy::harness::workload::WorkloadGen;
use faultstudy::recovery::{run_workload, ProgressiveRetry, RestartRetry};

fn big_env(seed: u64) -> Environment {
    Environment::builder()
        .seed(seed)
        .fd_limit(128)
        .proc_slots(64)
        .fs_capacity(1 << 24)
        .max_file_size(1 << 22)
        .build()
}

#[test]
fn thousand_request_soak_without_faults_is_clean() {
    for app_kind in AppKind::ALL {
        let mut env = big_env(1);
        let mut app = spawn_app(app_kind, &mut env);
        let workload = WorkloadGen::new(app_kind, 2).take_requests(1000);
        let mut strategy = RestartRetry::new(1);
        let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
        assert!(run.survived, "{app_kind}: {:?}", run.last_failure);
        assert_eq!(run.completed, 1000, "{app_kind}");
        assert_eq!(run.failures, 0, "{app_kind}");
        assert_eq!(run.recoveries, 0, "{app_kind}");
    }
}

#[test]
fn transient_fault_mid_soak_recovers_and_load_continues() {
    // 200 requests, the process-table fault's trigger in the middle.
    let mut env = big_env(3);
    let mut app = spawn_app(AppKind::Apache, &mut env);
    app.inject("apache-edt-02", &mut env).expect("injectable");
    let mut workload = WorkloadGen::new(AppKind::Apache, 4).take_requests(100);
    workload.push(app.trigger_request("apache-edt-02").expect("trigger"));
    workload.extend(WorkloadGen::new(AppKind::Apache, 5).take_requests(100));
    let mut strategy = ProgressiveRetry::new(5);
    let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
    assert!(run.survived, "{:?}", run.last_failure);
    assert_eq!(run.completed, 201);
    assert!(run.failures >= 1, "the injected fault must manifest");
}

#[test]
fn deterministic_fault_mid_soak_halts_progress_at_the_trigger() {
    let mut env = big_env(3);
    let mut app = spawn_app(AppKind::Mysql, &mut env);
    app.inject("mysql-ei-04", &mut env).expect("injectable");
    let mut workload = WorkloadGen::new(AppKind::Mysql, 6).take_requests(50);
    workload.push(app.trigger_request("mysql-ei-04").expect("trigger"));
    workload.extend(WorkloadGen::new(AppKind::Mysql, 7).take_requests(50));
    let mut strategy = RestartRetry::new(3);
    let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
    assert!(!run.survived);
    assert_eq!(run.completed, 50, "everything before the trigger was served");
    assert_eq!(run.failures, 4, "initial failure plus three futile retries");
}

#[test]
fn soak_outcomes_are_reproducible() {
    let run_once = || {
        let mut env = big_env(9);
        let mut app = spawn_app(AppKind::Gnome, &mut env);
        app.inject("gnome-edt-02", &mut env).expect("injectable");
        let mut workload = WorkloadGen::new(AppKind::Gnome, 10).take_requests(60);
        workload.push(app.trigger_request("gnome-edt-02").expect("trigger"));
        let mut strategy = ProgressiveRetry::new(5);
        run_workload(app.as_mut(), &mut env, &workload, &mut strategy)
    };
    assert_eq!(run_once(), run_once());
}

/// The streaming campaign fold at stress scale: a million samples in
/// release mode (scaled down under debug assertions so `cargo test` stays
/// fast), with the constant-memory contract asserted structurally — the
/// entire campaign aggregate is the survival-cell cross product plus the
/// anomaly list, so its size must not grow with the sample count.
#[test]
fn million_sample_streaming_campaign_holds_constant_state() {
    const SAMPLES: u32 = if cfg!(debug_assertions) { 50_000 } else { 1_000_000 };
    let spec = |samples| CampaignSpec { samples, seed: 2000 };
    let small = CampaignReport::run_with(spec(SAMPLES / 10), ParallelSpec::AUTO);
    let big = CampaignReport::run_with(spec(SAMPLES), ParallelSpec::AUTO);

    // 10x the samples, identical aggregate shape: the fold's state is the
    // (class, strategy) cross product, not the sample stream.
    let cell_bound = FaultClass::ALL.len() * StrategyKind::ALL.len();
    assert!(big.cells.len() <= cell_bound, "{} cells exceed the cross product", big.cells.len());
    assert_eq!(big.cells.len(), small.cells.len(), "cell count must not scale with samples");
    assert!(big.anomalies.is_empty(), "contract violations at scale: {:?}", big.anomalies);

    // Every sample landed in exactly one cell.
    let total: u64 = big.cells.iter().map(|c| u64::from(c.total)).sum();
    assert_eq!(total, u64::from(SAMPLES));
    // And the paper's thesis holds at stress scale: generic recovery never
    // rescues an environment-independent fault.
    for cell in &big.cells {
        if cell.class == FaultClass::EnvironmentIndependent && cell.strategy.is_generic() {
            assert_eq!(cell.survived, 0, "{:?}/{:?} survived EI faults", cell.class, cell.strategy);
        }
    }
}

/// The microreboot campaign at stress scale: a million requests in
/// release mode (scaled down under debug assertions), asserting the
/// constant-state contract — the campaign aggregate is the
/// (plan, mode, app) cross product plus one bounded histogram per cell,
/// so its shape must not grow with the request count, no matter how many
/// component reboots the stream provokes.
#[test]
fn million_request_microreboot_campaign_holds_constant_state() {
    use faultstudy::harness::micro::{MicroReport, MicroSpec, RecoveryMode};
    use faultstudy::traffic::ArrivalKind;

    const REQUESTS: u64 = if cfg!(debug_assertions) { 60_000 } else { 1_000_000 };
    let spec = |requests| MicroSpec { seed: 2000, requests, arrival: ArrivalKind::Poisson };
    let small = MicroReport::run_with(spec(REQUESTS / 10), ParallelSpec::AUTO);
    let big = MicroReport::run_with(spec(REQUESTS), ParallelSpec::AUTO);

    // 10x the requests, identical aggregate shape.
    assert_eq!(big.cells.len(), small.cells.len(), "cell count must not scale with load");
    assert_eq!(big.totals().offered, REQUESTS, "every offered request is accounted");

    // The microreboot contract holds at stress scale: the checkpointed
    // leak still defeats restart and still costs microreboot nothing,
    // and component-scoped recovery keeps its transient-TTR edge.
    let restart = big.cell("state-leak", RecoveryMode::Restart, AppKind::Apache).unwrap();
    let micro = big.cell("state-leak", RecoveryMode::Micro, AppKind::Apache).unwrap();
    assert!(restart.stats.dropped > 0, "the leak must keep defeating generic restart");
    assert_eq!(micro.stats.dropped, 0, "microreboot must absorb every leak crash");
    let class = FaultClass::EnvDependentTransient;
    let micro_ttr = big.class_ttr(class, RecoveryMode::Micro).p50().expect("recoveries");
    let restart_ttr = big.class_ttr(class, RecoveryMode::Restart).p50().expect("recoveries");
    assert!(
        micro_ttr < restart_ttr,
        "median transient TTR: micro {micro_ttr}ns !< restart {restart_ttr}ns"
    );
}

#[test]
fn injected_but_untriggered_fault_is_latent() {
    // A defect that never meets its trigger does not perturb the workload:
    // the paper's faults sat in released software until the workload found
    // them.
    let mut env = big_env(12);
    let mut app = spawn_app(AppKind::Apache, &mut env);
    app.inject("apache-ei-01", &mut env).expect("injectable");
    let workload = WorkloadGen::new(AppKind::Apache, 13).take_requests(300);
    let mut strategy = RestartRetry::new(0);
    let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
    assert!(run.survived, "{:?}", run.last_failure);
    assert_eq!(run.failures, 0, "the long-URL bug is latent under normal load");
}
