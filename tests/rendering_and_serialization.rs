//! Integration: rendered artifacts contain the paper's numbers, and every
//! serializable result round-trips through JSON (the CLI's `--json` path).

use faultstudy::core::taxonomy::AppKind;
use faultstudy::core::timeline::{by_month, by_release};
use faultstudy::corpus::paper_study;
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::experiment::StrategyKind;
use faultstudy::harness::RecoveryMatrix;
use faultstudy::report::{
    render_discussion, render_release_figure, render_table, render_time_figure, RelatedWork,
    TandemReconciliation,
};

#[test]
fn rendered_tables_quote_the_exact_counts() {
    let study = paper_study();
    let expected = [
        (AppKind::Apache, ["36", "7", "7", "50"]),
        (AppKind::Gnome, ["39", "3", "3", "45"]),
        (AppKind::Mysql, ["38", "4", "2", "44"]),
    ];
    for (app, numbers) in expected {
        let text = render_table(&study, app);
        for n in numbers {
            assert!(text.contains(n), "{app}: missing {n} in\n{text}");
        }
    }
}

#[test]
fn rendered_figures_have_one_bar_per_bucket() {
    let study = paper_study();
    let fig1 = render_release_figure(&by_release(&study, AppKind::Apache));
    assert_eq!(fig1.lines().filter(|l| l.contains('|')).count(), 4);
    let fig2 = render_time_figure(&by_month(&study, AppKind::Gnome));
    assert_eq!(fig2.lines().filter(|l| l.contains('|')).count(), 11);
    let fig3 = render_release_figure(&by_release(&study, AppKind::Mysql));
    assert_eq!(fig3.lines().filter(|l| l.contains('|')).count(), 5);
}

#[test]
fn discussion_renders_the_abstract_numbers() {
    let text = render_discussion(&paper_study().discussion());
    for needle in ["139", "14 (10%)", "12 (9%)", "72%-87%"] {
        assert!(text.contains(needle), "missing {needle}");
    }
}

#[test]
fn study_and_matrix_round_trip_through_json() {
    let study = paper_study();
    let json = serde_json::to_string(&study).expect("study serializes");
    let back: faultstudy::core::study::Study =
        serde_json::from_str(&json).expect("study deserializes");
    assert_eq!(back, study);

    let matrix = RecoveryMatrix::run_strategies(3, &[StrategyKind::None]);
    let json = serde_json::to_string(&matrix).expect("matrix serializes");
    let back: RecoveryMatrix = serde_json::from_str(&json).expect("matrix deserializes");
    assert_eq!(back, matrix);

    let campaign = CampaignReport::run(CampaignSpec { samples: 20, seed: 1 });
    let json = serde_json::to_string(&campaign).expect("campaign serializes");
    let back: CampaignReport = serde_json::from_str(&json).expect("campaign deserializes");
    assert_eq!(back, campaign);

    let rec = TandemReconciliation::default();
    let json = serde_json::to_string(&rec).expect("reconciliation serializes");
    let back: TandemReconciliation = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, rec);

    let rw = RelatedWork::paper(8.6);
    let json = serde_json::to_string(&rw).expect("related work serializes");
    let back: RelatedWork = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, rw);
}

#[test]
fn corpus_faults_round_trip_through_json() {
    for fault in faultstudy::corpus::full_corpus().iter().take(10) {
        let json = serde_json::to_string(fault).expect("fault serializes");
        let back: faultstudy::corpus::CuratedFault =
            serde_json::from_str(&json).expect("fault deserializes");
        assert_eq!(&back, fault);
    }
}
