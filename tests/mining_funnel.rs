//! Integration: the §4 selection funnels at paper scale.

use faultstudy::core::taxonomy::AppKind;
use faultstudy::corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy::harness::funnel::{paper_scale_funnels, run_funnel};
use faultstudy::mining::{Archive, KeywordQuery, SelectionPipeline};

#[test]
fn funnels_reproduce_the_papers_counts() {
    let runs = paper_scale_funnels(2000);
    let expected =
        [(AppKind::Apache, 5220, 50), (AppKind::Gnome, 500, 45), (AppKind::Mysql, 44_000, 44)];
    for (run, (app, raw, unique)) in runs.iter().zip(expected) {
        assert_eq!(run.outcome.app, app);
        assert_eq!(run.outcome.raw_size(), raw, "{app}");
        assert_eq!(run.outcome.unique_bugs(), unique, "{app}");
    }
}

#[test]
fn funnels_achieve_perfect_precision_and_recall_on_synthetic_truth() {
    for run in paper_scale_funnels(17) {
        assert_eq!(run.quality.precision(), 1.0, "{}", run.outcome.app);
        assert_eq!(run.quality.recall(), 1.0, "{}", run.outcome.app);
        assert_eq!(run.quality.faults_recalled, run.outcome.unique_bugs());
    }
}

#[test]
fn mysql_keyword_stage_keeps_a_few_hundred_of_44000() {
    // "We looked at a few hundred messages" (§4).
    let run = run_funnel(AppKind::Mysql, 2000);
    let kept = run.outcome.funnel[1].survivors;
    assert!((100..2500).contains(&kept), "keyword stage kept {kept}, not 'a few hundred'");
}

#[test]
fn funnel_stages_never_grow() {
    for run in paper_scale_funnels(3) {
        let counts: Vec<usize> = run.outcome.funnel.iter().map(|s| s.survivors).collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]), "{counts:?}");
    }
}

#[test]
fn funnels_are_deterministic_per_seed() {
    let a = run_funnel(AppKind::Gnome, 8);
    let b = run_funnel(AppKind::Gnome, 8);
    assert_eq!(a, b);
}

#[test]
fn selection_counts_are_stable_across_archive_seeds() {
    // Shuffling, duplicate counts, and noise vary with the seed; the set
    // of unique faults selected must not.
    for seed in [1, 2, 3, 4, 5] {
        let spec = PopulationSpec {
            app: AppKind::Apache,
            archive_size: 1000,
            max_duplicates_per_fault: 3,
            seed,
        };
        let population = SyntheticPopulation::generate(&spec);
        let archive = Archive::from_columns(AppKind::Apache, population.to_columns());
        let outcome = SelectionPipeline::for_app(AppKind::Apache).run(&archive);
        assert_eq!(outcome.unique_bugs(), 50, "seed {seed}");
    }
}

#[test]
fn single_keyword_pipelines_lose_recall() {
    // The paper chose four keywords; any single keyword misses faults
    // whose reports describe the symptom differently.
    let spec = PopulationSpec {
        app: AppKind::Mysql,
        archive_size: 2000,
        max_duplicates_per_fault: 0,
        seed: 9,
    };
    let population = SyntheticPopulation::generate(&spec);
    let archive = Archive::from_columns(AppKind::Mysql, population.to_columns());
    let full = SelectionPipeline::for_app(AppKind::Mysql).run(&archive).unique_bugs();
    assert_eq!(full, 44);
    let mut any_smaller = false;
    for kw in ["crash", "segmentation", "race", "died"] {
        let narrow = SelectionPipeline::with_keywords(Some(KeywordQuery::new([kw])));
        let n = narrow.run(&archive).unique_bugs();
        assert!(n <= full, "{kw}");
        any_smaller |= n < full;
    }
    assert!(any_smaller, "at least one single-keyword query must lose recall");
}
