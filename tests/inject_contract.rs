//! Integration: the environment-injection campaign confirms the paper's
//! class contract from the environment side (§3, §6), and the hardened
//! supervisor's policies behave identically however the campaign is
//! threaded.
//!
//! The corpus-driven matrix (`recovery_matrix.rs`) tests the thesis
//! through scripted bug reports; here the environment is perturbed
//! directly by scheduled injection plans and the outcomes must still line
//! up with the class of the injected condition.

use faultstudy::core::taxonomy::FaultClass;
use faultstudy::harness::experiment::StrategyKind;
use faultstudy::harness::{InjectReport, InjectSpec, ParallelSpec};

#[test]
fn the_class_contract_holds_under_direct_environment_injection() {
    let report = InjectReport::run(InjectSpec { seed: 2000 });
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);

    // 1. The environment-independent control survives nothing — no
    //    strategy, no scrub setting, no injection at all can save a
    //    deterministic application defect.
    for strategy in StrategyKind::ALL {
        for scrub in [false, true] {
            let (survived, total) =
                report.class_survival(FaultClass::EnvironmentIndependent, strategy, scrub);
            assert_eq!((survived, total), (0, 1), "{strategy} scrub={scrub}");
        }
    }

    // 2. Transient injections self-heal, so the retry family survives
    //    some of them without any operator help.
    for strategy in [StrategyKind::Restart, StrategyKind::Rollback, StrategyKind::Progressive] {
        let (survived, total) =
            report.class_survival(FaultClass::EnvDependentTransient, strategy, false);
        assert_eq!(total, 5);
        assert!(survived > 0, "{strategy}: survived no transient injection");
    }
    // The baseline survives nothing at all.
    for class in [
        FaultClass::EnvironmentIndependent,
        FaultClass::EnvDependentNonTransient,
        FaultClass::EnvDependentTransient,
    ] {
        let (survived, _) = report.class_survival(class, StrategyKind::None, false);
        assert_eq!(survived, 0, "no recovery, no survival ({class:?})");
    }

    // 3. Nontransient injections (an external program exhausting
    //    descriptors or disk) defeat every generic strategy — unless the
    //    supervisor's explicit scrub step, the stand-in for an operator
    //    action, clears the condition between retries.
    for strategy in StrategyKind::ALL.into_iter().filter(|s| s.is_generic()) {
        let (survived, total) =
            report.class_survival(FaultClass::EnvDependentNonTransient, strategy, false);
        assert_eq!((survived, total), (0, 3), "{strategy} survived without scrub");
    }
    for strategy in [StrategyKind::Restart, StrategyKind::Rollback, StrategyKind::Progressive] {
        let (survived, total) =
            report.class_survival(FaultClass::EnvDependentNonTransient, strategy, true);
        assert_eq!(total, 3);
        assert!(survived > 0, "{strategy}: scrubbing rescued nothing");
    }

    // 4. The hardening machinery actually ran: hangs were detected by the
    //    watchdog, the breaker degraded the most persistent strategy, and
    //    scrub-enabled units scrubbed.
    assert!(report.watchdog_fires() > 0);
    assert!(report.breaker_trips() > 0);
    assert!(report.scrubs() > 0);
}

#[test]
fn injection_reports_are_byte_identical_across_thread_counts() {
    let spec = InjectSpec { seed: 2000 };
    let reference = InjectReport::run_with(spec, ParallelSpec::threads(1));
    let reference_json = serde_json::to_string(&reference).expect("report serializes");
    for threads in [2usize, 8] {
        let report = InjectReport::run_with(spec, ParallelSpec::threads(threads));
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(json, reference_json, "{threads} threads");
    }
}
