//! Integration: the end-to-end recovery experiment (§5.4/§8) confirms the
//! classification's predictions for every fault class and strategy.

use faultstudy::core::taxonomy::FaultClass;
use faultstudy::corpus::{find, full_corpus};
use faultstudy::harness::experiment::{run_fault_experiment, StrategyKind};
use faultstudy::harness::RecoveryMatrix;

#[test]
fn the_papers_thesis_holds_end_to_end() {
    let matrix = RecoveryMatrix::run(2000);

    // 1. Environment-independent faults survive nothing whatsoever.
    for strategy in StrategyKind::ALL {
        let c = matrix.cell(FaultClass::EnvironmentIndependent, strategy);
        assert_eq!((c.total, c.survived), (113, 0), "{strategy}");
    }

    // 2. No purely generic strategy survives a nontransient fault.
    for strategy in StrategyKind::ALL.into_iter().filter(|s| s.is_generic()) {
        let c = matrix.cell(FaultClass::EnvDependentNonTransient, strategy);
        assert_eq!((c.total, c.survived), (14, 0), "{strategy}");
    }

    // 3. Application-specific recovery reaches the self-inflicted
    //    nontransient conditions: the Apache leak, both own-descriptor
    //    leaks, and the hostname rebinding.
    let cold =
        matrix.slugs_where(FaultClass::EnvDependentNonTransient, StrategyKind::AppSpecific, true);
    assert_eq!(
        cold,
        ["apache-edn-01", "apache-edn-02", "gnome-edn-01", "gnome-edn-02"],
        "app-specific survivors"
    );

    // 4. Transient faults survive retry-based generic recovery.
    for strategy in [StrategyKind::Restart, StrategyKind::Rollback, StrategyKind::Progressive] {
        let c = matrix.cell(FaultClass::EnvDependentTransient, strategy);
        assert_eq!(c.total, 12);
        assert!(c.survived >= 11, "{strategy} survived only {}/12", c.survived);
    }

    // 5. The baseline survives nothing.
    assert_eq!(matrix.overall(StrategyKind::None).survived, 0);

    // 6. Headline: overall generic survival sits in the paper's 5-14%
    //    transient band — generic recovery "will not be sufficient".
    for strategy in [StrategyKind::Restart, StrategyKind::ProcessPair, StrategyKind::Rollback] {
        let pct = matrix.overall(strategy).rate() * 100.0;
        assert!((5.0..=14.0).contains(&pct), "{strategy}: {pct:.1}% outside 5-14%");
    }
}

#[test]
fn matrix_is_deterministic_per_seed() {
    let a = RecoveryMatrix::run_strategies(77, &[StrategyKind::Restart, StrategyKind::None]);
    let b = RecoveryMatrix::run_strategies(77, &[StrategyKind::Restart, StrategyKind::None]);
    assert_eq!(a, b);
}

#[test]
fn thesis_is_robust_across_seeds() {
    // The matrix conclusions must not hinge on one lucky seed.
    for seed in [1, 123, 99_991] {
        let m = RecoveryMatrix::run_strategies(
            seed,
            &[StrategyKind::Restart, StrategyKind::AppSpecific],
        );
        assert_eq!(m.cell(FaultClass::EnvironmentIndependent, StrategyKind::Restart).survived, 0);
        assert_eq!(m.cell(FaultClass::EnvDependentNonTransient, StrategyKind::Restart).survived, 0);
        let t = m.cell(FaultClass::EnvDependentTransient, StrategyKind::Restart);
        assert!(t.survived >= 10, "seed {seed}: restart survived {}/12", t.survived);
        let pct = m.overall(StrategyKind::Restart).rate() * 100.0;
        assert!((5.0..=14.0).contains(&pct), "seed {seed}: {pct:.1}%");
    }
}

#[test]
fn every_fault_manifests_under_no_recovery() {
    // The experiment is only meaningful if the injected fault actually
    // fires: under NoRecovery, every one of the 139 workloads must fail.
    for fault in full_corpus() {
        let out = run_fault_experiment(&fault, StrategyKind::None, 4242);
        assert!(!out.survived, "{} did not manifest", fault.slug());
        assert!(out.failures > 0, "{}", fault.slug());
    }
}

#[test]
fn recovery_counts_are_consistent() {
    let fault = find("apache-edt-01").expect("slug exists");
    let out = run_fault_experiment(&fault, StrategyKind::Restart, 2000);
    assert!(out.survived);
    // DNS heals two simulated seconds after injection; 1s restarts reach
    // it on the second recovery.
    assert_eq!(out.recoveries, 2);
    assert_eq!(out.failures, 2);
}

#[test]
fn measured_transient_fraction_sits_among_related_work() {
    // Close the loop with §7: the measured transient percentage from the
    // corpus is consistent with Sullivan & Chillarege's 5-13% band and
    // with the overall cross-study conclusion.
    use faultstudy::corpus::paper_study;
    use faultstudy::report::RelatedWork;
    let d = paper_study().discussion();
    let rw = RelatedWork::paper(d.transient.1);
    assert!(rw.all_agree_faults_are_mostly_nontransient());
    assert!(rw.prior[0].consistent_with(d.transient.1), "within [Sullivan91/92]'s band");
}

#[test]
fn entropy_starvation_needs_exactly_one_restart() {
    let fault = find("apache-edt-07").expect("slug exists");
    let out = run_fault_experiment(&fault, StrategyKind::Restart, 2000);
    assert!(out.survived);
    assert_eq!(out.recoveries, 1, "one second of recovery refills 256 bits");
}
