//! Determinism of the open-loop traffic campaign: the report, the
//! instrumented metrics registry, and the rendered SLO table must be pure
//! functions of the `TrafficSpec` — thread count and chunk size must be
//! unobservable down to the serialized byte, for every arrival curve.

use faultstudy::exec::ParallelSpec;
use faultstudy::harness::traffic::{TrafficReport, TrafficSpec};
use faultstudy::traffic::ArrivalKind;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// The ISSUE acceptance criterion: report JSON, registry, and rendered
/// text are byte-identical at 1/2/4 threads for every arrival kind.
#[test]
fn traffic_report_is_byte_identical_across_thread_counts() {
    for arrival in ArrivalKind::ALL {
        let spec = TrafficSpec { seed: 7, requests: 3_780, arrival };
        let (reference, reference_registry) =
            TrafficReport::run_instrumented(spec, ParallelSpec::SEQUENTIAL);
        let reference_json = serde_json::to_string(&reference).expect("report serializes");
        let reference_text = reference.to_string();
        for threads in THREAD_COUNTS {
            let (report, registry) =
                TrafficReport::run_instrumented(spec, ParallelSpec::threads(threads));
            let json = serde_json::to_string(&report).expect("report serializes");
            assert_eq!(json, reference_json, "{arrival:?}, {threads} threads");
            assert_eq!(registry, reference_registry, "registry: {arrival:?}, {threads} threads");
            assert_eq!(report.to_string(), reference_text, "text: {arrival:?}, {threads} threads");
        }
    }
}

/// Chunk size is as unobservable as thread count: any chunking of the
/// unit index space folds to the same bytes.
#[test]
fn traffic_report_is_identical_for_every_chunk_size() {
    let spec = TrafficSpec { seed: 2000, requests: 2_457, arrival: ArrivalKind::Bursty };
    let (reference, reference_registry) =
        TrafficReport::run_instrumented(spec, ParallelSpec::SEQUENTIAL);
    for chunk in [1, 2, 7, 63, 189, 1000] {
        for threads in [2, 4] {
            let parallel = ParallelSpec::threads(threads).with_chunk(chunk);
            let (report, registry) = TrafficReport::run_instrumented(spec, parallel);
            assert_eq!(report, reference, "chunk {chunk}, {threads} threads");
            assert_eq!(registry, reference_registry, "registry: chunk {chunk}, {threads} threads");
        }
    }
}

/// The plain entry points agree with the instrumented one, and auto
/// parallelism matches sequential.
#[test]
fn traffic_entry_points_agree() {
    let spec = TrafficSpec { seed: 5, requests: 1_890, arrival: ArrivalKind::Poisson };
    let reference = TrafficReport::run_with(spec, ParallelSpec::SEQUENTIAL);
    assert_eq!(TrafficReport::run(spec), reference);
    assert_eq!(TrafficReport::run_with(spec, ParallelSpec::AUTO), reference);
    let (instrumented, _) = TrafficReport::run_instrumented(spec, ParallelSpec::threads(2));
    assert_eq!(instrumented, reference);
}

/// Every offered request is accounted for exactly once in the outcome
/// ledger, for each arrival curve.
#[test]
fn every_request_is_accounted_for() {
    for arrival in ArrivalKind::ALL {
        let spec = TrafficSpec { seed: 11, requests: 1_323, arrival };
        let report = TrafficReport::run(spec);
        let totals = report.totals();
        assert_eq!(totals.offered, spec.requests, "{arrival:?}");
        assert_eq!(totals.answered() + totals.dropped, totals.offered, "{arrival:?}");
        for cell in &report.cells {
            assert_eq!(
                cell.stats.answered() + cell.stats.dropped,
                cell.stats.offered,
                "{arrival:?} {cell:?}"
            );
        }
    }
}
