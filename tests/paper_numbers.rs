//! Integration: the corpus reproduces every number the paper reports in
//! Tables 1–3, the §5.4 discussion, and the shape properties of
//! Figures 1–3.

use faultstudy::core::taxonomy::{AppKind, FaultClass};
use faultstudy::core::timeline::{by_month, by_release, ei_shares, max_deviation, totals_grow};
use faultstudy::corpus::{corpus_for, full_corpus, paper_study, releases_of};

#[test]
fn tables_1_through_3_match_exactly() {
    let study = paper_study();
    let expected =
        [(AppKind::Apache, 36, 7, 7), (AppKind::Gnome, 39, 3, 3), (AppKind::Mysql, 38, 4, 2)];
    for (app, ei, edn, edt) in expected {
        let t = study.table(app);
        assert_eq!(t.independent, ei, "{app} environment-independent");
        assert_eq!(t.nontransient, edn, "{app} nontransient");
        assert_eq!(t.transient, edt, "{app} transient");
    }
}

#[test]
fn discussion_5_4_numbers() {
    let d = paper_study().discussion();
    assert_eq!(d.total, 139, "139 bugs examined");
    assert_eq!(d.nontransient.0, 14, "14 environment-dependent-nontransient");
    assert_eq!(d.transient.0, 12, "12 environment-dependent-transient");
    assert_eq!(d.nontransient.1.round() as u32, 10, "10%");
    assert_eq!(d.transient.1.round() as u32, 9, "9%");
    // "72-87% of the faults are independent of the operating environment"
    assert!(d.independent_range.0 >= 72.0 && d.independent_range.0 <= 73.0);
    assert!(d.independent_range.1 >= 86.0 && d.independent_range.1 <= 87.0);
}

#[test]
fn transient_fraction_spans_5_to_14_percent_per_application() {
    // The abstract's "only 5-14% of the faults were triggered by transient
    // conditions" — per application: Apache 7/50 = 14%, GNOME 3/45 ≈ 6.7%,
    // MySQL 2/44 ≈ 4.5% (the paper rounds to 5%).
    let study = paper_study();
    let mut rates: Vec<f64> = AppKind::ALL
        .iter()
        .map(|&app| {
            let t = study.table(app);
            f64::from(t.transient) * 100.0 / f64::from(t.total())
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    assert!(rates[0] >= 4.5 && rates[0] < 5.5, "low end ~5%: {}", rates[0]);
    assert!((rates[2] - 14.0).abs() < 0.01, "high end 14%: {}", rates[2]);
}

#[test]
fn figure_1_properties_proportion_stable_totals_grow() {
    let study = paper_study();
    let series = by_release(&study, AppKind::Apache);
    assert_eq!(series.buckets.len(), 4);
    let counts: Vec<_> = series.buckets.iter().map(|b| b.counts).collect();
    assert!(totals_grow(&counts), "total reports increase with newer releases");
    let shares = ei_shares(counts.iter().copied(), 3);
    assert!(
        max_deviation(&shares) < 0.08,
        "environment-independent proportion stays about the same: {shares:?}"
    );
}

#[test]
fn figure_2_properties_interior_dip() {
    let study = paper_study();
    let series = by_month(&study, AppKind::Gnome);
    assert_eq!(series.buckets.len(), 11, "Sep 1998 through Jul 1999");
    let totals: Vec<u32> = series.buckets.iter().map(|(_, c)| c.total()).collect();
    assert_eq!(totals.iter().sum::<u32>(), 45);
    // "GNOME shows a decrease in the number of faults reported for a short
    // interval before increasing again."
    let min_pos =
        totals.iter().enumerate().min_by_key(|(_, v)| **v).map(|(i, _)| i).expect("nonempty");
    assert!(min_pos > 0 && min_pos < totals.len() - 1, "dip is interior: {totals:?}");
    assert!(totals[min_pos] < totals[0]);
    assert!(totals[min_pos] < *totals.last().expect("nonempty"));
    // High environment-independent share in every period with faults.
    for (ym, c) in &series.buckets {
        if c.total() >= 4 {
            assert!(c.percent(FaultClass::EnvironmentIndependent) >= 75.0, "{ym}: {c}");
        }
    }
}

#[test]
fn figure_3_properties_growth_then_fresh_release_drop() {
    let study = paper_study();
    let series = by_release(&study, AppKind::Mysql);
    assert_eq!(series.buckets.len(), 5);
    let totals: Vec<u32> = series.buckets.iter().map(|b| b.counts.total()).collect();
    assert!(
        totals[..4].windows(2).all(|w| w[0] < w[1]),
        "totals grow across established releases: {totals:?}"
    );
    assert!(
        totals[4] < totals[3],
        "the newest release has substantially fewer reports: {totals:?}"
    );
}

#[test]
fn class_mix_is_statistically_homogeneous_across_releases() {
    // The quantitative form of "the relative proportion of environment-
    // independent bugs stays about the same": a chi-square homogeneity
    // test over the per-release class counts is non-significant at 5%.
    use faultstudy::core::stats::chi2_homogeneity;
    let study = paper_study();
    for app in [AppKind::Apache, AppKind::Mysql] {
        let buckets: Vec<_> = by_release(&study, app).buckets.iter().map(|b| b.counts).collect();
        let test = chi2_homogeneity(&buckets);
        assert!(
            !test.significant_at_05(),
            "{app}: chi2={:.2} > crit={:.2} (dof {})",
            test.statistic,
            test.critical_05,
            test.dof
        );
    }
}

#[test]
fn corpus_structure_is_sound() {
    let corpus = full_corpus();
    assert_eq!(corpus.len(), 139);
    for f in &corpus {
        assert!(!f.title().is_empty(), "{f}");
        assert!(!f.detail().is_empty(), "{f}");
        assert!(f.slug().starts_with(match f.app() {
            AppKind::Apache => "apache-",
            AppKind::Gnome => "gnome-",
            AppKind::Mysql => "mysql-",
        }));
        // Slug class tag agrees with the derived class.
        let tag = match f.class() {
            FaultClass::EnvironmentIndependent => "-ei-",
            FaultClass::EnvDependentNonTransient => "-edn-",
            FaultClass::EnvDependentTransient => "-edt-",
        };
        assert!(f.slug().contains(tag), "{} should contain {tag}", f.slug());
    }
    for app in AppKind::ALL {
        assert_eq!(corpus_for(app).len() as u32, paper_study().table(app).total());
        assert!(!releases_of(app).is_empty());
    }
}

#[test]
fn titles_are_distinct_not_copy_pasted() {
    let corpus = full_corpus();
    let mut titles: Vec<&str> = corpus.iter().map(|f| f.title()).collect();
    titles.sort_unstable();
    titles.dedup();
    assert_eq!(titles.len(), 139, "every corpus fault has a distinct title");
}
