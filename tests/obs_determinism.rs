//! The observability layer's own determinism contract: an instrumented
//! run is byte-identical to the plain one, and the merged registry is a
//! pure function of the seed — thread count must be unobservable in both.

use faultstudy::exec::ParallelSpec;
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::funnel::{paper_scale_funnels_instrumented, paper_scale_funnels_with};
use faultstudy::harness::RecoveryMatrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The ISSUE acceptance criterion: the campaign registry is identical at
/// 1, 2, and 8 worker threads, and recording never perturbs the report.
#[test]
fn campaign_registry_is_identical_across_thread_counts() {
    for seed in [5u64, 2000] {
        let spec = CampaignSpec { samples: 60, seed };
        let plain = CampaignReport::run_with(spec, ParallelSpec::SEQUENTIAL);
        let (baseline_report, baseline_registry) =
            CampaignReport::run_instrumented(spec, ParallelSpec::SEQUENTIAL);
        assert_eq!(baseline_report, plain, "seed {seed}: metrics must not perturb the campaign");
        for threads in THREAD_COUNTS {
            let (report, registry) =
                CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, baseline_report, "seed {seed}, {threads} threads");
            assert_eq!(registry, baseline_registry, "seed {seed}, {threads} threads");
        }
    }
}

/// Serialized registries are byte-identical across thread counts — the
/// equality above is not hiding representation differences.
#[test]
fn campaign_registry_json_is_byte_identical_across_thread_counts() {
    let spec = CampaignSpec { samples: 60, seed: 11 };
    let (_, baseline) = CampaignReport::run_instrumented(spec, ParallelSpec::SEQUENTIAL);
    let baseline_json = serde_json::to_string(&baseline).expect("registry serializes");
    for threads in THREAD_COUNTS {
        let (_, registry) = CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
        let json = serde_json::to_string(&registry).expect("registry serializes");
        assert_eq!(json, baseline_json, "{threads} threads");
    }
}

/// The instrumented mining funnels reproduce the plain runs and their
/// stage-timing registry is thread-count invariant.
#[test]
fn funnel_registry_is_identical_across_thread_counts() {
    let plain = paper_scale_funnels_with(2000, ParallelSpec::SEQUENTIAL);
    let (baseline_runs, baseline_registry) =
        paper_scale_funnels_instrumented(2000, ParallelSpec::SEQUENTIAL);
    assert_eq!(baseline_runs, plain, "metrics must not perturb the funnels");
    for threads in THREAD_COUNTS {
        let (runs, registry) =
            paper_scale_funnels_instrumented(2000, ParallelSpec::threads(threads));
        assert_eq!(runs, baseline_runs, "{threads} threads");
        assert_eq!(registry, baseline_registry, "{threads} threads");
    }
}

/// The instrumented matrix reproduces the plain one and its registry
/// carries a populated TTR histogram for every retry-based strategy.
#[test]
fn instrumented_matrix_reproduces_plain_and_carries_ttr() {
    let plain = RecoveryMatrix::run(2000);
    let (matrix, registry) = RecoveryMatrix::run_instrumented(2000);
    assert_eq!(matrix, plain, "metrics must not perturb the matrix");
    for strategy in ["restart", "rollback", "progressive"] {
        let ttr = registry
            .histogram("recovery.ttr", strategy)
            .unwrap_or_else(|| panic!("{strategy} recovered transient faults"));
        assert!(ttr.count() > 0, "{strategy}");
        assert!(ttr.max().unwrap() > 0, "{strategy}: recovery consumed simulated time");
    }
    assert!(registry.histogram("recovery.ttr", "none").is_none(), "baseline never recovers");
}
