//! Property-based tests on cross-crate invariants.

use faultstudy::core::classify::Classifier;
use faultstudy::core::evidence::Evidence;
use faultstudy::core::taxonomy::FaultClass;
use faultstudy::env::condition::{ConditionKind, Persistence};
use faultstudy::env::fdtable::FdTable;
use faultstudy::env::fs::VirtualFs;
use faultstudy::env::Environment;
use faultstudy::env::OwnerId;
use faultstudy::mining::dedup::dedup_reports;
use faultstudy::sim::queue::EventQueue;
use faultstudy::sim::rng::{DetRng, Xoshiro256StarStar};
use faultstudy::sim::time::SimTime;
use faultstudy_apps::{Application, MiniDb, Request};
use faultstudy_core::report::BugReport;
use faultstudy_core::taxonomy::{AppKind, Severity};
use proptest::prelude::*;

fn condition_strategy() -> impl Strategy<Value = ConditionKind> {
    prop::sample::select(ConditionKind::ALL.to_vec())
}

proptest! {
    /// The classifier is total and agrees with the normative taxonomy rule
    /// for any non-empty set of named conditions.
    #[test]
    fn classifier_matches_taxonomy_on_condition_sets(
        conds in prop::collection::vec(condition_strategy(), 1..6)
    ) {
        let verdict = Classifier::default()
            .classify_evidence(&Evidence::of_conditions(conds.clone()));
        let any_persists =
            conds.iter().any(|c| c.persistence() == Persistence::Persists);
        let expected = if any_persists {
            FaultClass::EnvDependentNonTransient
        } else {
            FaultClass::EnvDependentTransient
        };
        prop_assert_eq!(verdict.class, expected);
    }

    /// Classification is invariant under permutation and duplication of
    /// the evidence conditions.
    #[test]
    fn classifier_is_order_and_multiplicity_insensitive(
        conds in prop::collection::vec(condition_strategy(), 1..5),
        dup_index in 0usize..5
    ) {
        let classifier = Classifier::default();
        let forward = classifier.classify_evidence(&Evidence::of_conditions(conds.clone()));
        let mut reversed: Vec<_> = conds.clone();
        reversed.reverse();
        if let Some(d) = reversed.get(dup_index % reversed.len()).copied() {
            reversed.push(d);
        }
        let backward = classifier.classify_evidence(&Evidence::of_conditions(reversed));
        prop_assert_eq!(forward.class, backward.class);
        prop_assert_eq!(forward.conditions, backward.conditions);
    }

    /// Filesystem accounting: used + free == capacity and used equals the
    /// sum of file sizes, under any sequence of writes/appends/removes.
    #[test]
    fn vfs_accounting_is_exact(
        ops in prop::collection::vec((0u8..3, 0u8..6, 0u64..800), 1..60)
    ) {
        let mut fs = VirtualFs::new(2048, 1024);
        for (op, file, size) in ops {
            let path = format!("f{file}");
            match op {
                0 => { let _ = fs.write(path, size); }
                1 => { let _ = fs.append(path, size); }
                _ => { let _ = fs.remove(&path); }
            }
            let sum: u64 = fs.iter().map(|(_, m)| m.size).sum();
            prop_assert_eq!(fs.used(), sum);
            prop_assert!(fs.used() <= fs.capacity());
            prop_assert_eq!(fs.free() + fs.used(), fs.capacity());
            prop_assert!(fs.iter().all(|(_, m)| m.size <= fs.max_file_size()));
        }
    }

    /// Descriptor table: never exceeds the limit, per-owner counts sum to
    /// the total, under arbitrary open/close traffic.
    #[test]
    fn fd_table_respects_its_limit(
        ops in prop::collection::vec((any::<bool>(), 0u32..4), 1..80)
    ) {
        let mut table = FdTable::new(16);
        let owners = [OwnerId(1), OwnerId(2), OwnerId(3), OwnerId(4)];
        let mut open = Vec::new();
        for (do_open, who) in ops {
            if do_open {
                if let Ok(fd) = table.open(owners[who as usize]) {
                    open.push(fd);
                }
            } else if let Some(fd) = open.pop() {
                prop_assert!(table.close(fd).is_ok());
            }
            prop_assert!(table.in_use() <= table.limit());
            let per_owner: u32 = owners.iter().map(|o| table.held_by(*o)).sum();
            prop_assert_eq!(per_owner, table.in_use());
            prop_assert_eq!(table.in_use() as usize, open.len());
        }
    }

    /// Event queue pops are globally time-ordered and FIFO within a
    /// timestamp.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in prop::collection::vec(0u64..50, 1..100)
    ) {
        let mut q = EventQueue::new();
        for (i, t) in events.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), (SimTime::from_millis(*t), i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (orig_t, idx))) = q.pop() {
            prop_assert_eq!(at, orig_t);
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO among equal timestamps");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Checkpoint/restore is an exact state round-trip for any workload
    /// prefix of SQL operations.
    #[test]
    fn minidb_checkpoint_roundtrip_is_identity(
        values in prop::collection::vec(0i64..50, 1..12),
        extra in prop::collection::vec(0i64..50, 1..6)
    ) {
        let mut env = Environment::builder().seed(1).fs_capacity(1 << 20).build();
        let mut db = MiniDb::new(&mut env);
        db.handle(&Request::new("CREATE TABLE t (k, v)"), &mut env).unwrap();
        for (i, v) in values.iter().enumerate() {
            let sql = format!("INSERT INTO t VALUES ({i}, {v})");
            db.handle(&Request::new(sql), &mut env).unwrap();
        }
        let snapshot = db.snapshot();
        for (i, v) in extra.iter().enumerate() {
            let sql = format!("INSERT INTO t VALUES ({}, {v})", 100 + i);
            db.handle(&Request::new(sql), &mut env).unwrap();
        }
        db.restore(&snapshot);
        prop_assert_eq!(db.snapshot(), snapshot);
    }

    /// Dedup is idempotent and never invents reports.
    #[test]
    fn dedup_is_idempotent_and_contractive(
        titles in prop::collection::vec("[a-d ]{0,12}", 1..30)
    ) {
        let reports: Vec<BugReport> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| {
                BugReport::builder(AppKind::Apache, i as u64)
                    .title(t.clone())
                    .severity(Severity::Severe)
                    .build()
            })
            .collect();
        let once = dedup_reports(reports.clone());
        prop_assert!(once.len() <= reports.len());
        let twice = dedup_reports(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// The deterministic RNG's bounded draw respects its bound.
    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Fault classes derived from conditions are never
    /// environment-independent, and `None` always is.
    #[test]
    fn from_condition_partitions_correctly(cond in condition_strategy()) {
        prop_assert_ne!(
            FaultClass::from_condition(Some(cond)),
            FaultClass::EnvironmentIndependent
        );
        prop_assert_eq!(
            FaultClass::from_condition(None),
            FaultClass::EnvironmentIndependent
        );
    }
}
