//! Integration: the evidence extractor + classifier reproduce the curated
//! classification from the synthesized bug-report *text* alone, for all
//! 139 faults — the link between the paper's raw material (reports) and
//! its results (tables).

use faultstudy::core::classify::{Classifier, Confidence};
use faultstudy::core::evidence::Evidence;
use faultstudy::core::taxonomy::FaultClass;
use faultstudy::corpus::full_corpus;

#[test]
fn classifier_agrees_with_the_corpus_on_every_fault() {
    let classifier = Classifier::default();
    let mut disagreements = Vec::new();
    for (i, fault) in full_corpus().iter().enumerate() {
        let report = fault.report(i as u64 + 1);
        let verdict = classifier.classify_report(&report);
        if verdict.class != fault.class() {
            disagreements.push(format!(
                "{}: corpus={} classifier={} ({})",
                fault.slug(),
                fault.class(),
                verdict.class,
                verdict.rationale
            ));
        }
    }
    assert!(
        disagreements.is_empty(),
        "classifier disagreed on {} of 139:\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
}

#[test]
fn environment_dependent_verdicts_name_the_corpus_trigger() {
    let classifier = Classifier::default();
    for (i, fault) in full_corpus().iter().enumerate() {
        let Some(trigger) = fault.trigger() else { continue };
        let verdict = classifier.classify_report(&fault.report(i as u64 + 1));
        assert!(
            verdict.conditions.contains(&trigger),
            "{}: verdict conditions {:?} miss corpus trigger {trigger}",
            fault.slug(),
            verdict.conditions
        );
    }
}

#[test]
fn environment_dependent_verdicts_are_high_confidence() {
    let classifier = Classifier::default();
    for (i, fault) in full_corpus().iter().enumerate() {
        if fault.class() == FaultClass::EnvironmentIndependent {
            continue;
        }
        let verdict = classifier.classify_report(&fault.report(i as u64 + 1));
        assert_eq!(
            verdict.confidence,
            Confidence::High,
            "{}: trigger text should give high confidence",
            fault.slug()
        );
    }
}

#[test]
fn environment_independent_reports_carry_no_conditions() {
    for (i, fault) in full_corpus().iter().enumerate() {
        if fault.class() != FaultClass::EnvironmentIndependent {
            continue;
        }
        let evidence = Evidence::extract(&fault.report(i as u64 + 1));
        assert!(
            evidence.conditions.is_empty(),
            "{}: EI report text matched lexicon conditions {:?}",
            fault.slug(),
            evidence.conditions
        );
        assert_eq!(
            evidence.deterministic_repro,
            Some(true),
            "{}: EI report should read as deterministically reproducible",
            fault.slug()
        );
    }
}

#[test]
fn classification_is_stable_under_report_id_and_repeat_field_noise() {
    // The verdict depends on the text, not on archive metadata.
    let classifier = Classifier::default();
    for fault in full_corpus().iter().take(20) {
        let a = classifier.classify_report(&fault.report(1));
        let b = classifier.classify_report(&fault.report(99_999));
        assert_eq!(a.class, b.class, "{}", fault.slug());
    }
}
