//! Integration: the paper's complete methodology in one pass — raw
//! archives → §4 selection funnel → evidence extraction → classification →
//! Tables 1–3. Nothing in this test consults the curated classes until the
//! final comparison.

use faultstudy::core::classify::Classifier;
use faultstudy::core::study::{ClassifiedFault, Study};
use faultstudy::core::taxonomy::AppKind;
use faultstudy::corpus::{find, paper_study, PopulationSpec, SyntheticPopulation};
use faultstudy::mining::{Archive, SelectionPipeline};

/// Mines one app's synthetic archive and classifies every selected report
/// from its text, resolving release metadata through the generator's
/// ground truth (the analogue of the authors reading the report header).
fn mine_and_classify(app: AppKind, seed: u64) -> Vec<ClassifiedFault> {
    let spec = PopulationSpec { app, archive_size: 800, max_duplicates_per_fault: 2, seed };
    let population = SyntheticPopulation::generate(&spec);
    let archive = Archive::from_columns(app, population.to_columns());
    let outcome = SelectionPipeline::for_app(app).run(&archive);
    let classifier = Classifier::default();
    outcome
        .selected
        .iter()
        .map(|report| {
            let verdict = classifier.classify_report(report);
            let slug = population
                .ground_truth
                .get(&report.id)
                .expect("funnel precision is 1.0 on synthetic archives");
            let curated = find(slug).expect("ground-truth slug is in the corpus");
            ClassifiedFault {
                app,
                class: verdict.class,
                release_idx: 0,
                release: curated.release().to_owned(),
                filed: report.filed,
            }
        })
        .collect()
}

#[test]
fn mined_and_classified_tables_match_the_paper() {
    let mut faults = Vec::new();
    for app in AppKind::ALL {
        faults.extend(mine_and_classify(app, 31));
    }
    let study = Study::from_faults(faults);
    let reference = paper_study();
    for app in AppKind::ALL {
        assert_eq!(
            study.table(app),
            reference.table(app),
            "{app}: classification of mined reports diverges from the paper"
        );
    }
    let d = study.discussion();
    assert_eq!(d.total, 139);
    assert_eq!(d.nontransient.0, 14);
    assert_eq!(d.transient.0, 12);
}

#[test]
fn pipeline_is_deterministic_per_seed_and_sensitive_to_it() {
    let a = mine_and_classify(AppKind::Gnome, 5);
    let b = mine_and_classify(AppKind::Gnome, 5);
    assert_eq!(a, b);
    // A different seed shuffles the archive but selects the same faults.
    let c = mine_and_classify(AppKind::Gnome, 6);
    assert_eq!(a.len(), c.len());
}
