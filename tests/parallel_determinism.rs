//! Determinism under concurrency: campaigns, funnels, and dedup must be
//! pure functions of their spec — thread count must be unobservable in
//! every result, down to the serialized byte.

use faultstudy::core::report::BugReport;
use faultstudy::core::taxonomy::{AppKind, Severity};
use faultstudy::exec::{run_indexed, ParallelSpec};
use faultstudy::harness::campaign::{CampaignReport, CampaignSpec};
use faultstudy::harness::funnel::paper_scale_funnels_with;
use faultstudy::mining::dedup::{dedup_reports, dedup_reports_with_norms, normalize_title};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const MASTER_SEEDS: [u64; 4] = [1, 7, 42, 2000];

/// The ISSUE acceptance criterion: `CampaignReport` JSON is byte-identical
/// across `--threads 1/2/8` for several master seeds.
#[test]
fn campaign_json_is_byte_identical_across_thread_counts() {
    for seed in MASTER_SEEDS {
        let spec = CampaignSpec { samples: 120, seed };
        let baseline =
            serde_json::to_string(&CampaignReport::run_with(spec, ParallelSpec::SEQUENTIAL))
                .expect("campaign serializes");
        for threads in THREAD_COUNTS {
            let report = CampaignReport::run_with(spec, ParallelSpec::threads(threads));
            let json = serde_json::to_string(&report).expect("campaign serializes");
            assert_eq!(json, baseline, "seed {seed}, {threads} threads");
        }
    }
}

/// The streaming fold is a drop-in replacement for the materialized
/// engine: both the report and the instrumented metrics registry are
/// byte-identical at every thread count.
#[test]
fn streaming_fold_matches_materialized_reference_at_every_thread_count() {
    for seed in MASTER_SEEDS {
        let spec = CampaignSpec { samples: 150, seed };
        let (reference, reference_registry) =
            CampaignReport::run_materialized(spec, ParallelSpec::SEQUENTIAL, true);
        let reference_json = serde_json::to_string(&reference).expect("campaign serializes");
        for threads in [1, 2, 4, 8] {
            let (streamed, registry) =
                CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(streamed, reference, "seed {seed}, {threads} threads");
            assert_eq!(registry, reference_registry, "registry: seed {seed}, {threads} threads");
            let json = serde_json::to_string(&streamed).expect("campaign serializes");
            assert_eq!(json, reference_json, "json bytes: seed {seed}, {threads} threads");
        }
    }
}

/// The work-queue chunk size is as unobservable as the thread count: any
/// chunking of the sample index space folds to the same bytes.
#[test]
fn streaming_fold_is_identical_for_every_chunk_size() {
    let spec = CampaignSpec { samples: 130, seed: 2000 };
    let (reference, reference_registry) =
        CampaignReport::run_materialized(spec, ParallelSpec::SEQUENTIAL, true);
    for chunk in [1, 2, 7, 16, 64, 130, 1000] {
        for threads in [2, 4] {
            let parallel = ParallelSpec::threads(threads).with_chunk(chunk);
            let (streamed, registry) = CampaignReport::run_instrumented(spec, parallel);
            assert_eq!(streamed, reference, "chunk {chunk}, {threads} threads");
            assert_eq!(registry, reference_registry, "registry: chunk {chunk}, {threads} threads");
        }
    }
}

#[test]
fn campaign_auto_parallelism_matches_sequential() {
    let spec = CampaignSpec { samples: 80, seed: 3 };
    assert_eq!(
        CampaignReport::run_with(spec, ParallelSpec::AUTO),
        CampaignReport::run_with(spec, ParallelSpec::SEQUENTIAL),
    );
}

/// `PipelineOutcome` (via the paper-scale funnels, which exercise keyword,
/// severity, production, and dedup stages) is identical for every thread
/// count.
#[test]
fn funnel_outcomes_are_identical_across_thread_counts() {
    for seed in [5u64, 99] {
        let baseline = paper_scale_funnels_with(seed, ParallelSpec::SEQUENTIAL);
        for threads in THREAD_COUNTS {
            let runs = paper_scale_funnels_with(seed, ParallelSpec::threads(threads));
            assert_eq!(runs, baseline, "seed {seed}, {threads} threads");
            let json_a = serde_json::to_string(&runs).expect("funnels serialize");
            let json_b = serde_json::to_string(&baseline).expect("funnels serialize");
            assert_eq!(json_a, json_b, "seed {seed}, {threads} threads");
        }
    }
}

fn report(id: u64, title: String) -> BugReport {
    BugReport::builder(AppKind::Gnome, id).title(title).severity(Severity::Severe).build()
}

proptest! {
    /// Sequential dedup and dedup over parallel pre-normalized titles keep
    /// exactly the same survivor ids, for arbitrary titles (including
    /// re-post markers and punctuation).
    #[test]
    fn sequential_and_parallel_dedup_keep_the_same_survivors(
        titles in prop::collection::vec("(re |again |fwd )?[a-c!. ]{0,10}", 1..24)
    ) {
        let reports: Vec<BugReport> = titles
            .into_iter()
            .enumerate()
            .map(|(i, t)| report(i as u64, t))
            .collect();
        let sequential = dedup_reports(reports.clone());
        for threads in THREAD_COUNTS {
            let norms = run_indexed(reports.len(), ParallelSpec::threads(threads), |i| {
                normalize_title(&reports[i].title)
            });
            let parallel = dedup_reports_with_norms(reports.clone(), norms);
            let seq_ids: Vec<u64> = sequential.iter().map(|r| r.id).collect();
            let par_ids: Vec<u64> = parallel.iter().map(|r| r.id).collect();
            prop_assert_eq!(&seq_ids, &par_ids, "threads={}", threads);
        }
    }

    /// `run_indexed` is order-preserving and complete for any job count and
    /// thread count.
    #[test]
    fn run_indexed_is_order_preserving(jobs in 0usize..200, threads in 1usize..12) {
        let out = run_indexed(jobs, ParallelSpec::threads(threads), |i| i);
        prop_assert_eq!(out, (0..jobs).collect::<Vec<_>>());
    }
}
