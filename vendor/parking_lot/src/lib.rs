//! Offline stand-in for `parking_lot`: std locks with the parking_lot
//! API shape — `lock()` returns the guard directly and a poisoned lock
//! (a panic while held) is not an error for later users.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock if it is free.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A readers-writer lock whose acquisition methods never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type alias matching parking_lot's export.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type alias matching parking_lot's export.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type alias matching parking_lot's export.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
