//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are equally unfetchable offline). Supports the shapes this
//! workspace uses: non-generic structs (named, tuple/newtype, unit) and
//! enums whose variants are unit, tuple, or struct-like, with serde's
//! default external representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize parses"),
        Err(e) => error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens parse")
}

// --- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type {name} is not supported by the stub"));
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("unexpected enum body {other:?}")),
        },
        other => Err(format!("cannot derive for {other}")),
    }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next(); // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace/paren body on top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks is never empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut tokens = chunk.into_iter().peekable();
            skip_attrs_and_vis(&mut tokens);
            match tokens.next() {
                Some(TokenTree::Ident(i)) => Ok(i.to_string()),
                other => Err(format!("expected field name, got {other:?}")),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut tokens = chunk.into_iter().peekable();
            skip_attrs_and_vis(&mut tokens);
            let name = match tokens.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => return Err(format!("expected variant name, got {other:?}")),
            };
            let shape = match tokens.next() {
                None => VariantShape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream())?)
                }
                other => return Err(format!("unexpected variant body {other:?}")),
            };
            Ok(Variant { name, shape })
        })
        .collect()
}

// --- codegen -----------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::borrow::Cow::Borrowed({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Content::Map(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_content(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Content::Null"),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_content(__f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!(
                                    "::serde::Content::Seq(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Content::Map(\
                                 ::std::vec![(::std::borrow::Cow::Borrowed({vname:?}), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::borrow::Cow::Borrowed({f:?}), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Content::Map(\
                                 ::std::vec![(::std::borrow::Cow::Borrowed({vname:?}), \
                                 ::serde::Content::Map(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         __c.get({f:?}).unwrap_or(&::serde::Content::Null))?"
                    )
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match __c {{\n\
                         ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             ::std::format!(\"expected map for {name}, got {{__other:?}}\"))),\n\
                     }}",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_content(__items.get({i}).unwrap_or(\
                             &::serde::Content::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "match __c {{\n\
                         ::serde::Content::Seq(__items) => \
                             ::std::result::Result::Ok({name}({})),\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             ::std::format!(\"expected seq for {name}, got {{__other:?}}\"))),\n\
                     }}",
                    inits.join(", ")
                )
            };
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            let str_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(arity) if *arity == 1 => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__payload)?)),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_content(__items.get({i})\
                                         .unwrap_or(&::serde::Content::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => match __payload {{\n\
                                     ::serde::Content::Seq(__items) => \
                                         ::std::result::Result::Ok({name}::{vname}({inits})),\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                         ::std::format!(\"expected seq payload, got {{__other:?}}\"))),\n\
                                 }},",
                                inits = inits.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         __payload.get({f:?}).unwrap_or(&::serde::Content::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match __c {{\n\
                         ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                             {str_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                         }},\n\
                         ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __payload) = &__entries[0];\n\
                             match &**__tag {{\n\
                                 {map_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             ::std::format!(\"cannot read {name} from {{__other:?}}\"))),\n\
                     }}",
                    str_arms = str_arms.join("\n"),
                    map_arms = map_arms.join("\n")
                ),
            )
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
