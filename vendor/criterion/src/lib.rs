//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use —
//! `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a simple
//! wall-clock measurement: each benchmark is warmed up once, then timed
//! over adaptively chosen iteration batches until the measurement window
//! is filled, and the mean ns/iteration is printed. No statistics, plots,
//! or baselines; numbers are honest medians-of-means suitable for
//! relative comparisons on one machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub last_ns_per_iter: f64,
    measurement: Duration,
}

impl Bencher {
    /// Measures `f`, storing the mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call (also primes caches and lazy statics).
        std::hint::black_box(f());
        let mut batch: u64 = 1;
        // Grow the batch until one batch takes at least ~1% of the window,
        // so timer overhead stays negligible for fast closures.
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement / 100 || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        // Fill the measurement window.
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let millis = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion { measurement: Duration::from_millis(millis) }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let ns = run_one(self.measurement, &mut f);
        report(name, ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_owned(), measurement: self.measurement, _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement = window;
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let ns = run_one(self.measurement, &mut f);
        report(&format!("{}/{}", self.name, id), ns);
        self
    }

    /// Runs and reports one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let ns = run_one(self.measurement, &mut |b: &mut Bencher| f(b, input));
        report(&format!("{}/{}", self.name, id), ns);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(measurement: Duration, f: &mut F) -> f64 {
    let mut bencher = Bencher { last_ns_per_iter: f64::NAN, measurement };
    f(&mut bencher);
    bencher.last_ns_per_iter
}

fn report(name: &str, ns: f64) {
    if ns.is_nan() {
        println!("bench {name:<48} (no measurement)");
    } else {
        println!("bench {name:<48} {ns:>14.1} ns/iter");
    }
}

/// Re-export matching criterion's path; benches import it from std
/// anyway, but some code uses `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
