//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde that is API-compatible with the subset the
//! repository uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, and `serde_json::{to_string, to_string_pretty, from_str,
//! json!}` round-trips.
//!
//! Instead of serde's visitor-based zero-copy architecture, values pass
//! through a self-describing tree, [`Content`], which `serde_json` renders
//! to and parses from JSON text. The external representation matches
//! serde's defaults (externally tagged enums, newtype transparency,
//! integer map keys as JSON strings) so data written by the real serde
//! round-trips here and vice versa for the types this workspace defines.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the common currency between
/// [`Serialize`], [`Deserialize`], and the `serde_json` front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (the JSON object model).
    ///
    /// Keys are `Cow` so the derive-generated serializers can use the
    /// field-name literals directly — struct snapshots allocate nothing
    /// for their keys — while JSON parsing still produces owned keys.
    /// `Cow`'s `PartialEq`/`Ord`/`Debug` all delegate to the underlying
    /// `str`, so the two origins are indistinguishable downstream.
    Map(Vec<(Cow<'static, str>, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k.as_ref() == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Whether the value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// The value as a float, widening integers; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Content`] tree does not match the shape the
/// target type expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a formatted message.
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to the self-describing representation.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from a [`Content`] tree.
///
/// The `'de` lifetime exists for signature compatibility with the real
/// serde (`for<'de> Deserialize<'de>` bounds); this implementation always
/// produces owned data.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from the self-describing representation.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Map keys: serde renders non-string keys as JSON strings.
pub trait MapKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl<T: Serialize + for<'de> Deserialize<'de>> MapKey for T {
    fn to_key(&self) -> String {
        match self.to_content() {
            Content::Str(s) => s,
            Content::U64(v) => v.to_string(),
            Content::I64(v) => v.to_string(),
            Content::Bool(v) => v.to_string(),
            other => panic!("unsupported map key {other:?}"),
        }
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        if let Ok(v) = key.parse::<u64>() {
            if let Ok(parsed) = T::from_content(&Content::U64(v)) {
                return Ok(parsed);
            }
        }
        if let Ok(v) = key.parse::<i64>() {
            if let Ok(parsed) = T::from_content(&Content::I64(v)) {
                return Ok(parsed);
            }
        }
        T::from_content(&Content::Str(key.to_owned()))
    }
}

// --- primitive impls ---------------------------------------------------

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::msg(format!("expected unsigned int, got {content:?}")))?;
                <$t>::try_from(v).map_err(|_| DeError::msg(format!("{v} out of range")))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl<'de> Deserialize<'de> for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let v = content
            .as_u64()
            .ok_or_else(|| DeError::msg(format!("expected unsigned int, got {content:?}")))?;
        usize::try_from(v).map_err(|_| DeError::msg(format!("{v} out of range")))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => {
                        i64::try_from(v).map_err(|_| DeError::msg(format!("{v} out of range")))?
                    }
                    ref other => {
                        return Err(DeError::msg(format!("expected int, got {other:?}")))
                    }
                };
                <$t>::try_from(v).map_err(|_| DeError::msg(format!("{v} out of range")))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}
impl<'de> Deserialize<'de> for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        i64::from_content(content)
            .and_then(|v| isize::try_from(v).map_err(|_| DeError::msg("isize out of range")))
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match *content {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    ref other => Err(DeError::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Bool(b) => Ok(b),
            ref other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = content.as_str().ok_or_else(|| DeError::msg("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg(format!("expected string, got {content:?}")))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::msg(format!("expected null, got {other:?}"))),
        }
    }
}

// --- std containers ----------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(content).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(content)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key().into(), v.to_content())).collect())
    }
}
impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k.as_ref())?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort entries by rendered key.
        let mut entries: Vec<(Cow<'static, str>, Content)> =
            self.iter().map(|(k, v)| (k.to_key().into(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k.as_ref())?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $n;
                                $t::from_content(
                                    it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    other => Err(DeError::msg(format!("expected tuple seq, got {other:?}"))),
                }
            }
        }
    )*};
}
tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (Cow::Borrowed("secs"), Content::U64(self.as_secs())),
            (Cow::Borrowed("nanos"), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}
impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let secs = content
            .get("secs")
            .and_then(Content::as_u64)
            .ok_or_else(|| DeError::msg("duration missing secs"))?;
        let nanos = content
            .get("nanos")
            .and_then(Content::as_u64)
            .ok_or_else(|| DeError::msg("duration missing nanos"))?;
        let nanos = u32::try_from(nanos).map_err(|_| DeError::msg("nanos out of range"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    pub use crate::{DeError, Deserialize};
    /// Owned-deserialization marker bound, mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// Compatibility alias module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
