//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided — the subset this workspace uses
//! (bounded/unbounded channels with cloneable senders and receivers) —
//! implemented over `std::sync::mpsc`. Semantics match crossbeam for the
//! single-consumer and work-distribution patterns used here; receivers are
//! cloneable by sharing the underlying queue behind a mutex, so each
//! message is still delivered to exactly one receiver.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the channel is closed).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of a channel; cloneable, each message is
    /// delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().expect("channel lock").recv()
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.lock().expect("channel lock").try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.lock().expect("channel lock").recv_timeout(timeout)
        }

        /// Iterates until the channel is closed and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for &Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self.clone() }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    /// A channel with unlimited capacity.
    ///
    /// Implemented over a large-capacity sync channel; `usize::MAX / 2`
    /// exceeds any queue this workspace produces.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;
    use std::thread;

    #[test]
    fn channels_move_values_across_threads() {
        let (tx, rx) = bounded(4);
        let handle = thread::spawn(move || {
            for i in 0..10u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().expect("sender thread");
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
