//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use: integer/float range strategies, regex-subset string
//! strategies, tuples, `collection::vec`, `sample::select`, `option::of`,
//! `any::<T>()`, `prop_map`, and the `proptest!`/`prop_assert*` macros.
//!
//! Cases are generated from a SplitMix64 stream seeded by the test name,
//! so runs are deterministic across machines; set `PROPTEST_CASES` to
//! change the case count (default 64). Shrinking is not implemented — a
//! failing case panics with the generated inputs left to the assertion
//! message.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Deterministic SplitMix64 source for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= bound || (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges ----------------------------------------------------

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = u64::from(self.end - self.start);
                self.start + (rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = u64::from(hi - lo) + 1;
                lo + (rng.below(width) as $t)
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(width) as i64) as $t
            }
        }
    )*};
}
sint_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

// --- any --------------------------------------------------------------

/// Types with a default "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(32 + rng.below(95) as u8)
    }
}

/// Strategy for a type's [`Arbitrary`] values, mirroring `proptest::any`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- string strategies (regex subset) ----------------------------------

/// A parsed atom of the regex subset: a literal char, any-char dot, or a
/// character class, with a repetition range.
struct RegexAtom {
    chars: AtomChars,
    min: usize,
    max: usize,
}

enum AtomChars {
    Literal(char),
    Dot,
    Class(Vec<char>),
}

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom_chars = match c {
            '.' => AtomChars::Dot,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for member in chars.by_ref() {
                    match member {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range like a-z: expand on the next char.
                            set.push('-');
                        }
                        other => {
                            match prev {
                                Some(start) if set.last() == Some(&'-') => {
                                    set.pop();
                                    for r in (start as u32 + 1)..=(other as u32) {
                                        set.push(char::from_u32(r).expect("ascii range"));
                                    }
                                }
                                _ => set.push(other),
                            }
                            prev = Some(other);
                        }
                    }
                }
                AtomChars::Class(set)
            }
            '\\' => AtomChars::Literal(chars.next().unwrap_or('\\')),
            other => AtomChars::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or_else(|_| lo.trim().parse().unwrap_or(0)),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if chars.peek() == Some(&'*') {
            chars.next();
            (0, 16)
        } else if chars.peek() == Some(&'+') {
            chars.next();
            (1, 16)
        } else if chars.peek() == Some(&'?') {
            chars.next();
            (0, 1)
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom { chars: atom_chars, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex(self) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom.chars {
                    AtomChars::Literal(c) => out.push(*c),
                    AtomChars::Dot => out.push(char::from(32 + rng.below(95) as u8)),
                    AtomChars::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                }
            }
        }
        out
    }
}

// --- tuples ------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// --- collection / sample / option modules ------------------------------

/// `proptest::collection` subset.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)`: vectors of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `proptest::sample` subset.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select() requires options");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `select(options)`: one uniformly chosen element per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// `proptest::option` subset.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy wrapping another in `Option`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match proptest's default: None with probability 1/4ish.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `of(inner)`: `Some` three quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// --- macros ------------------------------------------------------------

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality in a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality in a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// The `prop` path alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 3u32..10, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn regex_strategies_match_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_select_compose(
            items in prop::collection::vec(prop::sample::select(vec![1u8, 2, 3]), 1..5),
            maybe in prop::option::of(0u8..4),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 5);
            prop_assert!(items.iter().all(|i| [1, 2, 3].contains(i)));
            if let Some(m) = maybe {
                prop_assert!(m < 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strategy = "[a-z]{1,8}";
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(Strategy::generate(&strategy, &mut a), Strategy::generate(&strategy, &mut b));
    }
}
