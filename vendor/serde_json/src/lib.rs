//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Content`] model to JSON text and parses
//! it back. Output follows serde_json's conventions: compact form uses
//! `","`/`":"` separators with no whitespace, pretty form indents by two
//! spaces, object keys and strings are escaped per RFC 8259, and `f64`
//! values print their shortest round-trip representation.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A parsed or constructed JSON value.
pub type Value = Content;

/// Error raised by [`from_str`] on malformed input or a shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Specialized `Result` for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_content(&value).map_err(Error::from)
}

/// Parses a [`Value`] tree into any deserializable type.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T> {
    T::from_content(value).map_err(Error::from)
}

/// Builds a [`Value`] from JSON-like literal syntax.
///
/// Supports the object/array/expression forms this workspace uses; values
/// are any `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $element:expr ),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $( $key:literal : $value:expr ),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::borrow::Cow::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// --- writing -----------------------------------------------------------

fn write_value(out: &mut String, value: &Content, indent: Option<usize>, depth: usize) {
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key.as_ref());
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // which is valid JSON for finite values.
        out.push_str(&format!("{v:?}"));
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!("expected ',' or ']', found {other:?}")));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key.into(), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!("expected ',' or '}}', found {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        let o: Option<u8> = from_str("null").unwrap();
        assert_eq!(o, None);
        let f: f64 = from_str("1.5e2").unwrap();
        assert_eq!(f, 150.0);
        let neg: i64 = from_str("-7").unwrap();
        assert_eq!(neg, -7);
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = json!({ "a": 1u32, "b": [true, false] });
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\n  \"a\": 1"), "{text}");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn maps_round_trip_with_integer_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, "x".to_owned());
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"3\":\"x\"}");
        let back: std::collections::BTreeMap<u64, String> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
