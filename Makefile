# Convenience targets; everything is plain cargo underneath.

.PHONY: build test bench-parallel verify fmt lint

build:
	cargo build --release

test:
	cargo test -q

# Writes BENCH_parallel.json: campaign/mining throughput at 1..N threads.
bench-parallel:
	sh scripts/bench_parallel.sh

verify:
	cargo run --release -p faultstudy-harness --bin faultstudy -- verify

fmt:
	cargo fmt --all -- --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings
