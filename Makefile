# Convenience targets; everything is plain cargo underneath.

.PHONY: build test bench-parallel bench-textscan bench-obs bench-inject bench-traffic bench-micro bench-oblivious bench-graph verify fmt lint

build:
	cargo build --release

test:
	cargo test -q

# Writes BENCH_parallel.json: campaign/mining throughput at 1..N threads.
bench-parallel:
	sh scripts/bench_parallel.sh

# Writes BENCH_textscan.json: naive vs automaton scan throughput at 1 thread.
bench-textscan:
	sh scripts/bench_textscan.sh

# Writes BENCH_obs.json: metrics-layer overhead on an instrumented campaign.
bench-obs:
	sh scripts/bench_obs.sh

# Writes BENCH_inject.json: injection-campaign determinism + supervisor overhead.
bench-inject:
	sh scripts/bench_inject.sh

# Writes BENCH_traffic.json: open-loop traffic engine requests/sec at 1..N threads.
bench-traffic:
	sh scripts/bench_traffic.sh

# Writes BENCH_micro.json: microreboot campaign requests/sec + TTR ratio vs restart.
bench-micro:
	sh scripts/bench_micro.sh

# Writes BENCH_oblivious.json: oblivious campaign requests/sec + EI rescue ratio.
bench-oblivious:
	sh scripts/bench_oblivious.sh

# Writes BENCH_graph.json: graph campaign requests/sec + channel-vs-process TTR ratio.
bench-graph:
	sh scripts/bench_graph.sh

verify:
	cargo run --release -p faultstudy-harness --bin faultstudy -- verify

fmt:
	cargo fmt --all -- --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings
