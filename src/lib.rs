//! # faultstudy
//!
//! Umbrella crate for the reproduction of *"Whither Generic Recovery from
//! Application Faults? A Fault Study using Open-Source Software"*
//! (Chandra & Chen, DSN 2000).
//!
//! This crate re-exports every sub-crate of the workspace under one roof so
//! that examples, integration tests, and downstream users can depend on a
//! single package:
//!
//! - [`sim`] — deterministic discrete-event substrate.
//! - [`exec`] — deterministic parallel work distribution.
//! - [`env`] — the simulated operating environment.
//! - [`core`] — fault taxonomy, bug-report model, classifier, study tables.
//! - [`corpus`] — the curated 139-fault corpus and synthetic generators.
//! - [`mining`] — bug-archive models and the selection pipeline of §4.
//! - [`apps`] — simulated applications with injectable faults.
//! - [`recovery`] — generic (and comparison app-specific) recovery strategies
//!   plus the hardened supervisor (watchdog, backoff, breaker, scrubbing).
//! - [`inject`] — plan-driven deterministic environment fault injection.
//! - [`harness`] — the experiment runner and per-class survival matrix.
//! - [`obs`] — deterministic metrics: simulated-time histograms and spans.
//! - [`report`] — table/figure rendering and the Lee–Iyer reconciliation.
//! - [`traffic`] — deterministic open-loop traffic engine with per-request
//!   SLO accounting.
//! - [`micro`] — crash-only component model: state-kind taxonomy and the
//!   crash/boot contract behind microreboot recovery.
//! - [`graph`] — distributed IPC fault plane: the applications wired into
//!   a service graph with channel-level fault injection, cascade
//!   accounting, and per-channel recovery.
//!
//! # Quickstart
//!
//! ```
//! use faultstudy::corpus::full_corpus;
//! use faultstudy::core::study::Study;
//!
//! let corpus = full_corpus();
//! let study = Study::from_faults(corpus.iter().map(|f| f.as_classified()));
//! assert_eq!(study.total(), 139);
//! ```

#![forbid(unsafe_code)]

pub use faultstudy_apps as apps;
pub use faultstudy_core as core;
pub use faultstudy_corpus as corpus;
pub use faultstudy_env as env;
pub use faultstudy_exec as exec;
pub use faultstudy_graph as graph;
pub use faultstudy_harness as harness;
pub use faultstudy_inject as inject;
pub use faultstudy_micro as micro;
pub use faultstudy_mining as mining;
pub use faultstudy_obs as obs;
pub use faultstudy_recovery as recovery;
pub use faultstudy_report as report;
pub use faultstudy_sim as sim;
pub use faultstudy_traffic as traffic;
